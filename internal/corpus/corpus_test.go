package corpus

import (
	"testing"

	"sisg/internal/vocab"
)

func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumItems = 0 },
		func(c *Config) { c.NumLeafCats = 0 },
		func(c *Config) { c.NumLeafCats = c.NumItems + 1 },
		func(c *Config) { c.NumTopCats = 0 },
		func(c *Config) { c.NumTopCats = c.NumLeafCats + 1 },
		func(c *Config) { c.NumShops = 0 },
		func(c *Config) { c.NumBrands = 0 },
		func(c *Config) { c.NumAgeBuckets = 0 },
		func(c *Config) { c.NumSessions = 0 },
		func(c *Config) { c.MinSession = 1 },
		func(c *Config) { c.MaxSession = c.MinSession - 1 },
		func(c *Config) { c.MeanSession = 0 },
		func(c *Config) { c.FwdBias = 1.5 },
		func(c *Config) { c.PStep, c.PJump, c.PCross, c.PFunnel, c.PNoise = 0, 0, 0, 0, 0 },
		func(c *Config) { c.PJump = -1 },
		func(c *Config) { c.TierMatch = 2 },
		func(c *Config) { c.ZipfExp = 0 },
	}
	for i, mutate := range bad {
		c := Tiny()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	c := Tiny()
	if err := c.Validate(); err != nil {
		t.Fatalf("Tiny config invalid: %v", err)
	}
	for _, cfg := range []Config{Sim25K(), Sim100K(), Sim800K()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", cfg.Name, err)
		}
	}
}

func TestCatalogInvariants(t *testing.T) {
	cat, err := BuildCatalog(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := cat.Cfg

	// Every leaf owns at least one item; ranks index correctly.
	for leaf, items := range cat.LeafItems {
		if len(items) == 0 {
			t.Fatalf("leaf %d empty", leaf)
		}
		for rank, id := range items {
			if cat.Items[id].Leaf != int32(leaf) {
				t.Fatalf("item %d in leaf %d has Leaf=%d", id, leaf, cat.Items[id].Leaf)
			}
			if int(cat.RankInLeaf[id]) != rank {
				t.Fatalf("item %d rank mismatch", id)
			}
		}
	}
	// SI values in range; tops consistent; funnels stay inside the top.
	for i := range cat.Items {
		it := &cat.Items[i]
		if it.Leaf < 0 || int(it.Leaf) >= cfg.NumLeafCats {
			t.Fatalf("item %d leaf out of range", i)
		}
		if it.Top != cat.LeafTop[it.Leaf] {
			t.Fatalf("item %d top mismatch", i)
		}
		if it.Shop < 0 || int(it.Shop) >= cfg.NumShops ||
			it.Brand < 0 || int(it.Brand) >= cfg.NumBrands ||
			it.City < 0 || int(it.City) >= cfg.NumCities ||
			it.Style < 0 || int(it.Style) >= cfg.NumStyles ||
			it.Material < 0 || int(it.Material) >= cfg.NumMaterials {
			t.Fatalf("item %d SI out of range: %+v", i, it)
		}
		if it.Tier < 0 || int(it.Tier) >= cfg.NumPowers {
			t.Fatalf("item %d tier out of range", i)
		}
	}
	for leaf := range cat.LeafNext {
		for g := range cat.LeafNext[leaf] {
			next := cat.LeafNext[leaf][g]
			if cat.LeafTop[next] != cat.LeafTop[leaf] {
				t.Fatalf("funnel leaves top: %d -> %d", leaf, next)
			}
		}
	}
	// AccessoryLeaf agrees with LeafNext.
	if cat.AccessoryLeaf(0, 1) != cat.LeafNext[0][1] {
		t.Fatal("AccessoryLeaf mismatch")
	}
}

func TestCatalogDeterminism(t *testing.T) {
	a, err := BuildCatalog(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCatalog(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("catalog not deterministic at item %d", i)
		}
	}
}

func TestGenerateSessions(t *testing.T) {
	ds := tinyDataset(t)
	cfg := ds.Cfg
	if len(ds.Sessions) != cfg.NumSessions {
		t.Fatalf("got %d sessions", len(ds.Sessions))
	}
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		if len(s.Items) < cfg.MinSession || len(s.Items) > cfg.MaxSession {
			t.Fatalf("session %d length %d out of [%d,%d]", i, len(s.Items), cfg.MinSession, cfg.MaxSession)
		}
		if s.UserType < 0 || int(s.UserType) >= len(ds.Pop.Types) {
			t.Fatalf("session %d bad user type", i)
		}
		for _, it := range s.Items {
			if it < 0 || int(it) >= cfg.NumItems {
				t.Fatalf("session %d bad item %d", i, it)
			}
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := tinyDataset(t)
	b := tinyDataset(t)
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatal("session counts differ")
	}
	for i := range a.Sessions {
		if a.Sessions[i].UserType != b.Sessions[i].UserType {
			t.Fatalf("session %d user differs", i)
		}
		for j := range a.Sessions[i].Items {
			if a.Sessions[i].Items[j] != b.Sessions[i].Items[j] {
				t.Fatalf("session %d item %d differs", i, j)
			}
		}
	}
}

func TestDictConstruction(t *testing.T) {
	ds := tinyDataset(t)
	d := ds.Dict
	// Item i must have vocabulary ID i (HBGP and the trainers rely on it).
	for i := 0; i < d.NumItems; i++ {
		id, ok := d.Lookup(ItemToken(int32(i)))
		if !ok || id != int32(i) {
			t.Fatalf("item %d has vocab ID %d", i, id)
		}
		if !d.IsItem(id) {
			t.Fatalf("IsItem(%d) false", id)
		}
	}
	// SI IDs resolve to the right tokens.
	for i := 0; i < 10; i++ {
		si := ds.Catalog.Items[i].SI()
		for col, v := range si {
			want := SIToken(col, v)
			if d.Name(d.ItemSI[i][col]) != want {
				t.Fatalf("item %d col %d: %s != %s", i, col, d.Name(d.ItemSI[i][col]), want)
			}
		}
	}
	// Counts: every session item contributes 1 item count + 8 SI counts.
	var wantItems uint64
	for i := range ds.Sessions {
		wantItems += uint64(len(ds.Sessions[i].Items))
	}
	if got := d.TotalCount(vocab.KindItem); got != wantItems {
		t.Fatalf("item token total = %d, want %d", got, wantItems)
	}
	if got := d.TotalCount(vocab.KindSI); got != wantItems*NumSIColumns {
		t.Fatalf("SI token total = %d, want %d", got, wantItems*NumSIColumns)
	}
	if got := d.TotalCount(vocab.KindUserType); got != uint64(len(ds.Sessions)) {
		t.Fatalf("user-type total = %d, want %d", got, len(ds.Sessions))
	}
}

func TestSplitNextItem(t *testing.T) {
	ds := tinyDataset(t)
	sp := ds.SplitNextItem(0.1)
	if len(sp.Train) != len(ds.Sessions) {
		t.Fatalf("train sessions %d != %d", len(sp.Train), len(ds.Sessions))
	}
	if len(sp.Test) == 0 {
		t.Fatal("no test cases")
	}
	maxTest := int(0.1*float64(len(ds.Sessions))) + 1
	if len(sp.Test) > maxTest {
		t.Fatalf("too many test cases: %d > %d", len(sp.Test), maxTest)
	}
	for _, tc := range sp.Test {
		if tc.Query == tc.Target && len(tc.Prefix) == 0 {
			continue // legal but uninteresting
		}
		if tc.Query < 0 || tc.Target < 0 {
			t.Fatal("bad test case ids")
		}
	}
}

func TestMeasureAsymmetry(t *testing.T) {
	ds := tinyDataset(t)
	st := ds.MeasureAsymmetry()
	if st.Pairs == 0 {
		t.Fatal("no pairs measured")
	}
	if st.Fraction <= 0.05 {
		t.Fatalf("asymmetry fraction %.3f too low — forward bias not planted?", st.Fraction)
	}
	if st.Significant > st.Pairs {
		t.Fatal("significant > pairs")
	}
}

func TestHoldoutAndFilter(t *testing.T) {
	ds := tinyDataset(t)
	cold := ds.HoldoutItems(0.2)
	if len(cold) == 0 {
		t.Fatal("no holdout items")
	}
	frac := float64(len(cold)) / float64(len(ds.Catalog.Items))
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("holdout fraction %.2f far from 0.2", frac)
	}
	isCold := map[int32]bool{}
	for _, id := range cold {
		isCold[id] = true
	}
	filtered := FilterSessions(ds.Sessions, cold)
	if len(filtered) == 0 || len(filtered) > len(ds.Sessions) {
		t.Fatalf("filtered count %d", len(filtered))
	}
	for i := range filtered {
		if len(filtered[i].Items) < 2 {
			t.Fatalf("filtered session %d too short", i)
		}
		for _, it := range filtered[i].Items {
			if isCold[it] {
				t.Fatalf("cold item %d survived filtering", it)
			}
		}
	}
	// Determinism of the holdout.
	again := ds.HoldoutItems(0.2)
	if len(again) != len(cold) {
		t.Fatal("holdout not deterministic")
	}
}

func TestComputeStatsPairCount(t *testing.T) {
	// pairCount must equal brute-force enumeration.
	brute := func(l, m int) uint64 {
		var n uint64
		for i := 0; i < l; i++ {
			for j := -m; j <= m; j++ {
				if j == 0 {
					continue
				}
				if k := i + j; k >= 0 && k < l {
					n++
				}
			}
		}
		return n
	}
	for _, l := range []int{1, 2, 5, 20} {
		for _, m := range []int{1, 3, 10} {
			if got, want := pairCount(l, m), brute(l, m); got != want {
				t.Fatalf("pairCount(%d,%d) = %d, want %d", l, m, got, want)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	ds := tinyDataset(t)
	st := ds.ComputeStats(10, 20)
	if st.NumItems != ds.Cfg.NumItems || st.NumSIColumns != NumSIColumns {
		t.Fatalf("stats: %+v", st)
	}
	if st.TrainingPairs != st.PositivePairs*21 {
		t.Fatal("training pairs != positive × 21")
	}
	if st.Tokens != ds.Dict.TotalTokens() {
		t.Fatal("tokens mismatch")
	}
	if st.AvgSessionLen < float64(ds.Cfg.MinSession) || st.AvgSessionLen > float64(ds.Cfg.MaxSession) {
		t.Fatalf("avg session length %v", st.AvgSessionLen)
	}
}

func TestUserTypeTokens(t *testing.T) {
	u := UserType{Gender: 0, Age: 1, Power: 2, Tags: 0b101}
	tok := u.Token()
	if tok != "ut_F_21-25_p2_married_hascar" {
		t.Fatalf("token = %q", tok)
	}
}

func TestTypesMatching(t *testing.T) {
	ds := tinyDataset(t)
	all := ds.Pop.TypesMatching(-1, -1, -1)
	if len(all) != len(ds.Pop.Types) {
		t.Fatal("unconstrained match incomplete")
	}
	f := ds.Pop.TypesMatching(0, -1, -1)
	for _, i := range f {
		if ds.Pop.Types[i].Gender != 0 {
			t.Fatal("gender filter broken")
		}
	}
	narrow := ds.Pop.TypesMatching(0, 2, 1)
	for _, i := range narrow {
		ut := ds.Pop.Types[i]
		if ut.Gender != 0 || ut.Age != 2 || ut.Power != 1 {
			t.Fatal("narrow filter broken")
		}
	}
}

func TestStyleOffsetStable(t *testing.T) {
	ds := tinyDataset(t)
	for i := range ds.Pop.Types {
		a := ds.Pop.StyleOffset(int32(i))
		b := ds.Pop.StyleOffset(int32(i))
		if a != b || a < 0 || a >= 4 {
			t.Fatalf("StyleOffset(%d) = %d,%d", i, a, b)
		}
	}
}

func TestGeneratorCloneIndependent(t *testing.T) {
	ds := tinyDataset(t)
	g := NewGenerator(ds.Catalog, ds.Pop)
	c := g.Clone()
	a := g.Next()
	b := c.Next()
	same := a.UserType == b.UserType && len(a.Items) == len(b.Items)
	if same {
		for i := range a.Items {
			if a.Items[i] != b.Items[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("clone produced identical first session — streams not split")
	}
}
