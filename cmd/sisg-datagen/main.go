// Command sisg-datagen generates a synthetic Taobao-like session log
// (stage 1 of the paper's §III-C training pipeline) and writes it to disk
// in seqio's binary or text format, together with the vocabulary.
//
// Usage:
//
//	sisg-datagen -corpus Sim25K -out sessions.bin [-text] [-vocab vocab.tsv] [-seed N]
//
// The catalog and user population are deterministic functions of the
// corpus name and seed, so downstream tools regenerate them instead of
// reading them from disk.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sisg/internal/corpus"
	"sisg/internal/experiments"
	"sisg/internal/seqio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisg-datagen: ")
	var (
		corpusName = flag.String("corpus", "quick", "dataset config: Sim25K, Sim100K, Sim800K, quick, tiny")
		out        = flag.String("out", "sessions.bin", "output session file")
		text       = flag.Bool("text", false, "write the line-oriented text format instead of binary")
		vocabOut   = flag.String("vocab", "", "optionally write the vocabulary (name/kind/count TSV) here")
		seed       = flag.Uint64("seed", 0, "override corpus seed (0 = config default)")
		stats      = flag.Bool("stats", false, "print Table II-style statistics")
	)
	flag.Parse()

	cfg, err := experiments.CorpusByName(*corpusName)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	ds, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatalf("generating %s: %v", cfg.Name, err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if *text {
		err = seqio.WriteText(f, ds.Sessions, ds.Pop)
	} else {
		err = seqio.WriteBinary(f, ds.Sessions)
	}
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	log.Printf("wrote %d sessions to %s", len(ds.Sessions), *out)

	if *vocabOut != "" {
		vf, err := os.Create(*vocabOut)
		if err != nil {
			log.Fatal(err)
		}
		err = ds.Dict.Save(vf)
		if err2 := vf.Close(); err == nil {
			err = err2
		}
		if err != nil {
			log.Fatalf("writing vocabulary: %v", err)
		}
		log.Printf("wrote %d vocabulary entries to %s", ds.Dict.Len(), *vocabOut)
	}
	if *stats {
		st := ds.ComputeStats(10*(1+corpus.NumSIColumns), 20)
		corpus.WriteTable(os.Stdout, []corpus.Stats{st})
		fmt.Printf("avg session length: %.2f items\n", st.AvgSessionLen)
	}
}
