// Command sisg-chaos drives the deterministic chaos harness against the
// distributed trainer: seeded crash/stall/drop schedules with the
// self-healing invariants checked after every scenario (pair accounting,
// zero loss under recovery, finite embeddings, exact same-seed replay,
// mid-chaos checkpoint/resume equivalence).
//
// Run the builtin suite:
//
//	sisg-chaos
//
// Add seeded random crash schedules on top (each is a pure function of its
// seed, so a failing seed is a reproducible bug report):
//
//	sisg-chaos -random 8 -seed 42
//
// Exit status is non-zero if any scenario fails.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sisg/internal/chaos"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisg-chaos: ")
	var (
		builtin   = flag.Bool("builtin", true, "run the builtin scenario suite")
		random    = flag.Int("random", 0, "additionally run N seeded random crash scenarios")
		seed      = flag.Uint64("seed", 1, "base seed for -random scenarios (scenario i uses seed+i)")
		match     = flag.String("run", "", "only run scenarios whose name contains this substring")
		transport = flag.String("transport", "", "override every scenario's transport: chan or tcp (empty = scenario default)")
		verbose   = flag.Bool("v", false, "print per-scenario stats")
	)
	flag.Parse()

	var scs []chaos.Scenario
	if *builtin {
		scs = append(scs, chaos.Builtin()...)
	}
	for i := 0; i < *random; i++ {
		scs = append(scs, chaos.RandomScenario(*seed+uint64(i)))
	}

	var failedNames []string
	ran := 0
	start := time.Now()
	for _, sc := range scs {
		if *match != "" && !strings.Contains(sc.Name, *match) {
			continue
		}
		ran++
		if *transport != "" {
			sc.Transport = *transport
		}
		res, err := chaos.Run(sc)
		if err != nil {
			log.Fatalf("%s: %v", sc.Name, err)
		}
		if res.Passed() {
			fmt.Printf("PASS %-28s (%v)\n", sc.Name, res.Elapsed.Round(time.Millisecond))
		} else {
			failedNames = append(failedNames, sc.Name)
			fmt.Printf("FAIL %-28s (%v)\n", sc.Name, res.Elapsed.Round(time.Millisecond))
			// One "scenario: violation" line per invariant break — the same
			// greppable shape as sisg-lint's "file:line:col: check: message"
			// diagnostics, so the lint and chaos CI jobs read alike.
			for _, v := range res.Violations {
				fmt.Printf("%s: %s\n", sc.Name, v)
			}
		}
		if *verbose || !res.Passed() {
			st := res.Stats
			fmt.Printf("     pairs=%d local=%d remote=%d degraded=%d dropped=%d recovered=%d restarts=%d takeovers=%d dead=%v hosts=%v\n",
				st.Pairs, st.LocalPairs, st.RemotePairs, st.Degraded, st.DroppedPairs,
				st.RecoveredPairs, st.Restarts, st.Takeovers, st.DeadWorkers, st.Hosts)
		}
	}
	fmt.Printf("%d scenarios, %d failed (%v)\n", ran, len(failedNames), time.Since(start).Round(time.Millisecond))
	if len(failedNames) > 0 {
		fmt.Printf("failing: %s\n", strings.Join(failedNames, ", "))
		os.Exit(1)
	}
}
