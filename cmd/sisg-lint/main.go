// Command sisg-lint runs the project's static analyzer suite (internal/lint)
// over the module: determinism, concurrency and durability invariants that
// go vet does not know about.
//
// Lint the whole module (the usual CI invocation):
//
//	go run ./cmd/sisg-lint ./...
//
// Restrict output to one subtree, or to selected checks:
//
//	go run ./cmd/sisg-lint ./internal/graph
//	go run ./cmd/sisg-lint -checks maporder,errsink ./...
//
// Machine-readable output, one JSON object per diagnostic per line:
//
//	go run ./cmd/sisg-lint -json ./...
//
// Diagnostics print as file:line:col: check: message. Suppress a single
// finding with an end-of-line (or directly-preceding) comment:
//
//	//lint:allow <check> <one-line reason>
//
// With -strict-allows (on in CI), an allow comment that suppresses
// nothing — or names a check that does not exist — is itself a finding,
// so suppressions cannot outlive the code they excuse.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sisg/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit one JSON diagnostic per line instead of human text")
		checks  = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list    = flag.Bool("list", false, "list the available checks and exit")
		strict  = flag.Bool("strict-allows", false, "report //lint:allow comments that suppress nothing")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sisg-lint [flags] [./... | ./path/to/pkg ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*checks, ",")...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	root, err := moduleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sisg-lint:", err)
		os.Exit(2)
	}
	mod, err := lint.Load(root, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sisg-lint:", err)
		os.Exit(2)
	}

	keep, err := pathFilter(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sisg-lint:", err)
		os.Exit(2)
	}

	diags := mod.Lint(analyzers...)
	if *strict {
		diags = append(diags, mod.StaleAllows(analyzers...)...)
	}
	n := 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if !keep(d.Pos.Filename) {
			continue
		}
		n++
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil {
			rel = r
		}
		if *jsonOut {
			if err := enc.Encode(jsonDiag{File: rel, Line: d.Pos.Line, Col: d.Pos.Column, Check: d.Check, Message: d.Message}); err != nil {
				fmt.Fprintln(os.Stderr, "sisg-lint:", err)
				os.Exit(2)
			}
		} else {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if n > 0 {
		if !*jsonOut {
			fmt.Printf("%d diagnostics\n", n)
		}
		os.Exit(1)
	}
}

// jsonDiag is the -json line format, stable for CI annotation tooling.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// pathFilter converts package patterns (./..., ./internal/graph,
// ./internal/...) into a predicate over diagnostic file paths. The whole
// module is always analyzed — cross-package checks need the full tree —
// and the patterns only restrict which findings are reported.
func pathFilter(root string, patterns []string) (func(string) bool, error) {
	if len(patterns) == 0 {
		return func(string) bool { return true }, nil
	}
	type rule struct {
		prefix    string
		recursive bool
	}
	var rules []rule
	for _, p := range patterns {
		rec := false
		if p == "./..." || p == "..." {
			return func(string) bool { return true }, nil
		}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			rec = true
			p = rest
		}
		abs, err := filepath.Abs(p)
		if err != nil {
			return nil, err
		}
		if abs != root && !strings.HasPrefix(abs, root+string(filepath.Separator)) {
			return nil, fmt.Errorf("pattern %q is outside the module at %s", p, root)
		}
		rules = append(rules, rule{prefix: abs, recursive: rec})
	}
	return func(file string) bool {
		dir := filepath.Dir(file)
		for _, r := range rules {
			if r.recursive {
				if dir == r.prefix || strings.HasPrefix(dir, r.prefix+string(filepath.Separator)) {
					return true
				}
			} else if dir == r.prefix {
				return true
			}
		}
		return false
	}, nil
}
