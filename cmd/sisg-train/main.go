// Command sisg-train trains a SISG variant (stages 1-4 of §III-C plus the
// training itself) and writes the embedding model.
//
// Local (Hogwild) training:
//
//	sisg-train -corpus Sim25K -variant SISG-F-U-D -out model.emb
//
// Simulated-distributed training with HBGP + ATNS (§III):
//
//	sisg-train -corpus Sim25K -variant SISG-F-U-D -workers 8 -out model.emb
//
// Sessions are regenerated deterministically from the corpus config, or
// read from a file produced by sisg-datagen via -sessions.
//
// Crash recovery: with -checkpoint-dir the trainer snapshots model and
// progress roughly every -checkpoint-every pairs; a killed run restarted
// with the same flags plus -resume continues from the last snapshot.
// (-warm-start is different: it seeds a fresh run from yesterday's model,
// the paper's daily incremental update.)
//
// Self-healing (simulated-distributed only): -recovery makes the
// supervisor resurrect workers the heartbeat monitor declares dead (up to
// -max-restarts times each, from their durable scan cursor) and then hand
// their partition to a surviving worker, so no training pair is ever
// dropped or degraded by a death.
//
// Observability: -metrics prints periodic progress lines (pairs/sec,
// tokens/sec, current LR, ETA) during training; -pprof-addr exposes
// net/http/pprof plus a Prometheus /metrics page on a sidecar listener,
// so a long daily-update run can be profiled and scraped while it works.
//
// Streaming training with zero-downtime serving:
//
//	sisg-train -stream -corpus tiny -reserve-items 40 -launch-every 25 \
//	    -publish-every 500 -serve localhost:8080
//
// -stream replaces the batch epochs with an endless ingest loop over a
// live session generator (drifting popularity, new items launching over
// time): tokens are admitted under -vocab-budget by a count-min sketch,
// newly admitted items are Eq. 6-seeded from their side information
// BEFORE any gradient touches them, and every -publish-every sessions an
// immutable snapshot generation is published. With -serve, the latest
// generation is hot-swapped into a serving tier on that address —
// in-flight requests keep the snapshot they started on; new requests see
// the new generation. -stream-sessions bounds the ingest window (0 runs
// until SIGINT/SIGTERM); with -serve the process keeps serving the final
// generation after the window until signalled.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/dist"
	"sisg/internal/emb"
	"sisg/internal/experiments"
	"sisg/internal/metrics"
	"sisg/internal/model"
	"sisg/internal/seqio"
	"sisg/internal/server"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
	"sisg/internal/vocab"
)

// logProgress renders one live training snapshot as a log line.
func logProgress(p sgns.Progress) {
	if p.Done {
		log.Printf("progress: done: %d pairs, %d tokens in %v",
			p.Pairs, p.Tokens, p.Elapsed.Round(time.Millisecond))
		return
	}
	log.Printf("progress: %3.0f%% epoch %d/%d | %.0f pairs/s, %.0f tokens/s | lr %.5f | ETA %v",
		100*p.Fraction(), p.Epoch+1, p.Epochs,
		p.PairsPerSec, p.TokensPerSec, p.LR, p.ETA.Round(time.Second))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisg-train: ")
	var (
		corpusName = flag.String("corpus", "quick", "dataset config: Sim25K, Sim100K, Sim800K, quick, tiny")
		sessions   = flag.String("sessions", "", "optional session file from sisg-datagen (binary format)")
		variant    = flag.String("variant", "SISG-F-U-D", "model variant: SGNS, SISG-F, SISG-U, SISG-F-U, SISG-F-U-D")
		out        = flag.String("out", "model.emb", "output embedding file")
		dim        = flag.Int("dim", 32, "embedding dimension")
		window     = flag.Int("window", 5, "context window in items")
		negatives  = flag.Int("negatives", 5, "negative samples per pair")
		epochs     = flag.Int("epochs", 2, "training epochs")
		lr         = flag.Float64("lr", 0.025, "initial learning rate")
		workers    = flag.Int("workers", 0, "simulated distributed workers (0 = local Hogwild training)")
		transport  = flag.String("transport", "chan", "distributed transport: chan (in-process) or tcp (loopback sockets); needs -workers")
		w2vOut     = flag.String("w2v", "", "optionally also export input vectors in word2vec text format")
		warmStart  = flag.String("warm-start", "", "warm-start from an existing model (daily incremental update)")
		seed       = flag.Uint64("seed", 0, "override corpus seed (0 = config default)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for crash-recovery snapshots (empty = no checkpointing)")
		ckptEvery  = flag.Uint64("checkpoint-every", 1_000_000, "snapshot roughly every N trained pairs")
		resume     = flag.Bool("resume", false, "resume from the snapshot in -checkpoint-dir if one exists")
		recovery   = flag.Bool("recovery", false, "self-heal the distributed run: resurrect dead workers from their scan cursor, then hand their partition to a survivor")
		maxRestart = flag.Int("max-restarts", 0, "resurrections per worker before partition takeover (0 = default budget, negative = takeover immediately); needs -recovery")
		showProg   = flag.Bool("metrics", false, "print periodic training progress lines (pairs/sec, tokens/sec, LR, ETA)")
		progEvery  = flag.Duration("metrics-every", 2*time.Second, "progress reporting interval for -metrics")
		pprofAddr  = flag.String("pprof-addr", "", "expose net/http/pprof and /metrics on this sidecar address (e.g. localhost:6060)")

		stream       = flag.Bool("stream", false, "streaming mode: ingest a live session stream and publish snapshot generations instead of batch epochs")
		streamTotal  = flag.Int("stream-sessions", 20000, "streaming: sessions to ingest (0 = endless, until SIGINT/SIGTERM)")
		publishEvery = flag.Int("publish-every", 2000, "streaming: publish a snapshot generation every N ingested sessions")
		reserveItems = flag.Int("reserve-items", 0, "streaming: not-yet-launched items appended to the catalog, launching over time")
		launchEvery  = flag.Int("launch-every", 0, "streaming: launch one reserved item every N sessions (0 with -reserve-items = every session)")
		driftEvery   = flag.Int("drift-every", 0, "streaming: advance popularity drift every N sessions (0 = no drift)")
		vocabBudget  = flag.Int("vocab-budget", 0, "streaming: admitted-vocabulary budget in embedding rows (0 = full universe dictionary)")
		admitMin     = flag.Int("admit-min-count", 1, "streaming: estimated count a token needs before earning a row")
		streamRate   = flag.Float64("stream-rate", 0, "streaming: throttle ingest to N sessions/sec (0 = unthrottled)")
		serveAddr    = flag.String("serve", "", "streaming: serve the latest snapshot over HTTP on this address, hot-swapped on every publish")
	)
	flag.Parse()

	reg := metrics.NewRegistry()
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof + metrics sidecar on http://%s/debug/pprof/ and /metrics", *pprofAddr)
			// Same header deadline as the hardened serving port; the long
			// write window is for pprof profile/trace streams, which hold
			// the response open for their -seconds argument (30s default).
			sidecar := &http.Server{
				Addr:              *pprofAddr,
				Handler:           metrics.DebugMux(reg),
				ReadHeaderTimeout: 5 * time.Second,
				ReadTimeout:       10 * time.Second,
				WriteTimeout:      2 * time.Minute,
				IdleTimeout:       2 * time.Minute,
			}
			log.Fatal(sidecar.ListenAndServe())
		}()
	}

	cfg, err := experiments.CorpusByName(*corpusName)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	v, err := sisg.VariantByName(*variant)
	if err != nil {
		log.Fatal(err)
	}

	if *stream {
		runStream(cfg, v, reg, streamParams{
			total:        *streamTotal,
			publishEvery: *publishEvery,
			reserveItems: *reserveItems,
			launchEvery:  *launchEvery,
			driftEvery:   *driftEvery,
			vocabBudget:  *vocabBudget,
			admitMin:     *admitMin,
			rate:         *streamRate,
			serve:        *serveAddr,
			dim:          *dim,
			window:       *window,
			negatives:    *negatives,
			lr:           *lr,
		})
		return
	}

	log.Printf("generating %s ...", cfg.Name)
	ds, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train := ds.Sessions
	if *sessions != "" {
		f, err := os.Open(*sessions)
		if err != nil {
			log.Fatal(err)
		}
		train, err = seqio.ReadBinary(f, ds.Dict.NumItems)
		_ = f.Close() // read-only file; a short read surfaces through the ReadBinary error
		if err != nil {
			log.Fatalf("reading %s: %v", *sessions, err)
		}
		log.Printf("loaded %d sessions from %s", len(train), *sessions)
	}

	opt := sgns.Defaults()
	opt.Dim = *dim
	opt.Window = *window
	opt.Negatives = *negatives
	opt.Epochs = *epochs
	opt.LR = float32(*lr)
	opt.Seed = cfg.Seed
	opt.CheckpointDir = *ckptDir
	opt.CheckpointEvery = *ckptEvery
	opt.Resume = *resume
	if *resume && *ckptDir == "" {
		log.Fatal("-resume needs -checkpoint-dir")
	}
	if *showProg {
		opt.Progress = logProgress
		opt.ProgressEvery = *progEvery
	}

	start := time.Now()
	var model *sisg.Model
	switch {
	case *warmStart != "":
		f, err := os.Open(*warmStart)
		if err != nil {
			log.Fatal(err)
		}
		prev, err := emb.Load(f)
		_ = f.Close() // read-only file; a short read surfaces through the Load error
		if err != nil {
			log.Fatalf("loading %s: %v", *warmStart, err)
		}
		seqs := sisg.Enrich(ds.Dict, train, v)
		ropt := sisg.TrainOptions(opt, v, opt.Window)
		st, err := sgns.Resume(prev, ds.Dict.Dict, seqs, ropt)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("warm-started from %s: %d incremental pairs", *warmStart, st.Pairs)
		model = &sisg.Model{Variant: v, Dict: ds.Dict, Emb: prev, Stats: st}
	case *workers > 0:
		log.Printf("distributed training: %d workers, HBGP + ATNS, %s transport", *workers, *transport)
		seqs := sisg.Enrich(ds.Dict, train, v)
		part, _, err := dist.PartitionForDataset(ds, train, *workers)
		if err != nil {
			log.Fatal(err)
		}
		dopt := dist.DefaultOptions(*workers)
		dopt.Options = sisg.TrainOptions(opt, v, opt.Window)
		// TrainOptions replaced the embedded sgns.Options wholesale, and with
		// it the Workers field DefaultOptions had set from the flag.
		dopt.Workers = *workers
		dopt.Recovery = *recovery
		dopt.MaxRestarts = *maxRestart
		dopt.Transport = *transport
		dopt.Metrics = reg // live train_* gauges on the -pprof-addr /metrics page
		dmodel, st, err := dist.Train(ds.Dict.Dict, seqs, part, dopt)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("trained %d pairs (%.1f%% remote), simulated cluster time %v",
			st.Pairs, 100*st.RemoteFraction(), st.SimElapsed.Round(time.Millisecond))
		if *recovery && len(st.DeadWorkers) > 0 {
			log.Printf("self-healing: %d dead, %d restarts, %d takeovers, %d pairs retrained by replacements",
				len(st.DeadWorkers), st.Restarts, st.Takeovers, st.RecoveredPairs)
		}
		model = &sisg.Model{Variant: v, Dict: ds.Dict, Emb: dmodel}
	default:
		model, err = sisg.Train(ds.Dict, train, v, opt)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("trained %d pairs at %.0f tokens/s", model.Stats.Pairs, model.Stats.TokensPerSec())
	}
	log.Printf("training took %v", time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	err = model.Emb.Save(f)
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	log.Printf("wrote %d×%d model (in+out) to %s", model.Emb.Vocab(), model.Emb.Dim(), *out)

	if *w2vOut != "" {
		f, err := os.Create(*w2vOut)
		if err != nil {
			log.Fatal(err)
		}
		err = emb.SaveWord2VecText(f, model.Emb, ds.Dict.Dict, true)
		if err2 := f.Close(); err == nil {
			err = err2
		}
		if err != nil {
			log.Fatalf("writing %s: %v", *w2vOut, err)
		}
		log.Printf("exported word2vec text format to %s", *w2vOut)
	}
}

// streamParams carries the -stream flag set (plus the shared training
// hyperparameters) into runStream.
type streamParams struct {
	total        int
	publishEvery int
	reserveItems int
	launchEvery  int
	driftEvery   int
	vocabBudget  int
	admitMin     int
	rate         float64
	serve        string
	dim          int
	window       int
	negatives    int
	lr           float64
}

// runStream is the -stream mode: one ingest loop owns the streamer and the
// live generator, publishing immutable snapshot generations into a
// model.Holder; the optional serving tier reads whatever generation the
// holder currently publishes, so a swap is invisible to in-flight
// requests. The model lives in those in-memory snapshots — -out and -w2v
// are not written in this mode.
func runStream(cfg corpus.Config, v sisg.Variant, reg *metrics.Registry, p streamParams) {
	if p.publishEvery <= 0 {
		log.Fatal("-publish-every must be positive")
	}
	lv, err := corpus.NewLive(corpus.LiveConfig{
		Base:         cfg,
		ReserveItems: p.reserveItems,
		LaunchEvery:  p.launchEvery,
		DriftEvery:   p.driftEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	budget := p.vocabBudget
	if budget <= 0 {
		budget = lv.Dict.Len()
	}
	lo := sgns.LiveDefaults(budget)
	lo.Dim = p.dim
	lo.Window = p.window
	lo.Negatives = p.negatives
	lo.LR = float32(p.lr)
	lo.Seed = cfg.Seed
	st, err := sisg.NewStreamer(lv.Dict, sisg.StreamConfig{
		Variant: v,
		Admit:   vocab.AdmitConfig{Budget: budget, MinCount: uint32(p.admitMin)},
		Live:    lo,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("streaming %s over %s: %d reserved items, vocab budget %d rows",
		v.Name, cfg.Name, p.reserveItems, budget)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tick *time.Ticker
	if p.rate > 0 {
		tick = time.NewTicker(time.Duration(float64(time.Second) / p.rate))
		defer tick.Stop()
	}
	ingest := func() bool {
		if tick != nil {
			select {
			case <-ctx.Done():
				return false
			case <-tick.C:
			}
		} else if ctx.Err() != nil {
			return false
		}
		st.Ingest(lv.Next())
		return true
	}

	// Warm-up: one publish interval before generation 1 exists, so the
	// first served snapshot already carries a trained vocabulary.
	warm := p.publishEvery
	if p.total > 0 && p.total < warm {
		warm = p.total
	}
	for i := 0; i < warm; i++ {
		if !ingest() {
			log.Print("interrupted during warm-up, bye")
			return
		}
	}
	logGen := func(snap model.Snapshot) {
		log.Printf("generation %d: %d sessions, %d launched, vocab %d/%d rows, %d items servable, %d Eq.6-seeded, %d pairs",
			snap.Generation(), st.Sessions(), len(lv.Launched()),
			snap.VocabSize(), budget, snap.NumItems(), st.SeededItems(), st.Pairs())
	}
	first := st.Publish()
	holder := model.NewHolder(first)
	logGen(first)

	var s *server.Server
	var srv *http.Server
	errc := make(chan error, 1)
	if p.serve != "" {
		s = server.NewWithHolder(lv.Dataset(), holder, server.Config{Metrics: reg})
		srv = &http.Server{Addr: p.serve, Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() { errc <- srv.ListenAndServe() }()
		log.Printf("serving latest generation on %s (hot-swapped on every publish)", p.serve)
	}

	interrupted := false
	for n := warm; p.total <= 0 || n < p.total; n++ {
		if !ingest() {
			interrupted = true
			break
		}
		if st.Sessions()%uint64(p.publishEvery) == 0 {
			snap := st.Publish()
			holder.Publish(snap)
			logGen(snap)
		}
	}
	if !interrupted && st.Sessions()%uint64(p.publishEvery) != 0 {
		snap := st.Publish()
		holder.Publish(snap)
		logGen(snap)
	}
	log.Printf("ingest window done: %d sessions, %d generations published",
		st.Sessions(), holder.Generation())

	if srv == nil {
		log.Print("no -serve address; snapshots were in-memory only, bye")
		return
	}
	if !interrupted {
		log.Printf("serving generation %d until SIGINT/SIGTERM ...", holder.Generation())
		select {
		case err := <-errc:
			log.Fatal(err)
		case <-ctx.Done():
		}
	}
	stop() // restore default signal behavior: a second signal kills immediately
	s.SetReady(false)
	log.Print("signal received, readiness withdrawn, draining ...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("drain incomplete: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("drained, bye")
}
