package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"sisg/internal/emb"
	"sisg/internal/knn"
	"sisg/internal/rng"
)

// runANN is the recall@K-vs-brute-force harness for the IVF index: it
// builds a clustered corpus (a mixture of Gaussians — embedding tables
// have cluster structure; uniform noise would be adversarial for any
// partition-based ANN index and representative of nothing), takes the
// flat scan as ground truth, sweeps NProbe with quantization off and on,
// and reports recall@{1,10} and batched queries/sec for every setting.
//
// Two assertions make this a harness rather than a printout: some swept
// setting must reach recall@10 >= floor at >= minSpeedup x the flat
// scan's throughput, and IVF at exhaustive probe must be bit-identical
// to the flat scan (the degenerate case that anchors the whole curve).
func runANN(w io.Writer, outPath string, rows, dim, nq, k int, floor, minSpeedup float64) error {
	const centers = 100
	r := rng.New(42)
	mu := make([][]float32, centers)
	for c := range mu {
		mu[c] = make([]float32, dim)
		for d := range mu[c] {
			mu[c][d] = float32(r.NormFloat64())
		}
	}
	m := emb.NewMatrix(rows, dim)
	for i := 0; i < rows; i++ {
		row := m.Row(int32(i))
		center := mu[r.Intn(centers)]
		for d := range row {
			row[d] = center[d] + float32(r.NormFloat64())*0.15
		}
	}
	// Queries perturb real rows: the regime retrieval actually serves
	// (an item's vector querying for its neighbours).
	queries := make([][]float32, nq)
	for i := range queries {
		src := m.Row(int32(r.Intn(rows)))
		queries[i] = make([]float32, dim)
		for d := range queries[i] {
			queries[i][d] = src[d] + float32(r.NormFloat64())*0.02
		}
	}

	ix := knn.NewIndex(m, 0, false)
	nlist := ix.IVFClusters()
	fmt.Fprintf(w, "ann recall benchmark: %d rows x %d dims, %d queries, k=%d, %d clusters\n",
		rows, dim, nq, k, nlist)

	// Ground truth and evaluation depth: recall@{1,10} needs at least 10
	// true neighbours per query regardless of the serving k.
	kk := k
	if kk < 10 {
		kk = 10
	}
	truth, err := ix.QueryBatch(context.Background(), queries, knn.Options{K: kk})
	if err != nil {
		return err
	}

	// Throughput is measured batched for both paths — flat coalesces
	// tiles across queries, IVF fans queries across cores — so the
	// speedup column compares saturated engine against saturated engine,
	// not a parallel scan against one goroutine.
	measure := func(opts knn.Options) ([][]knn.Result, float64) {
		out, _ := ix.QueryBatch(context.Background(), queries, opts) // warm (builds IVF on first use)
		var reps int
		start := time.Now()
		for reps = 0; ; reps++ {
			if s := time.Since(start).Seconds(); s >= 0.3 && reps >= 1 {
				return out, float64(reps*nq) / s
			}
			_, _ = ix.QueryBatch(context.Background(), queries, opts)
		}
	}

	_, flatQPS := measure(knn.Options{K: kk})
	fmt.Fprintf(w, "%-26s %10.1f queries/sec  (1.00x)  recall@1 1.000  recall@10 1.000\n",
		"flat exact scan", flatQPS)
	results := []benchRow{{
		Bench: "ann", Strategy: "flat", Rows: rows, Dim: dim, Queries: nq, K: kk,
		QueriesPerSec: flatQPS, Speedup: 1, RecallAt1: 1, RecallAt10: 1,
	}}

	// The exhaustive-probe anchor: bit-identical to flat, by construction.
	exhaustive, err := ix.QueryBatch(context.Background(), queries, knn.Options{K: kk, Index: knn.IndexIVF, NProbe: nlist})
	if err != nil {
		return err
	}
	if err := sameResultSets(truth, exhaustive); err != nil {
		return fmt.Errorf("IVF at exhaustive probe diverged from flat scan: %v", err)
	}
	fmt.Fprintf(w, "IVF nprobe=%d (exhaustive): bit-identical to flat scan: OK\n", nlist)

	pass := false
	for _, quantized := range []bool{false, true} {
		for nprobe := 1; nprobe < nlist; nprobe *= 2 {
			opts := knn.Options{K: kk, Index: knn.IndexIVF, NProbe: nprobe, Quantized: quantized}
			got, qps := measure(opts)
			r1 := recallAt(truth, got, 1)
			r10 := recallAt(truth, got, 10)
			speedup := qps / flatQPS
			label := fmt.Sprintf("ivf nprobe=%d", nprobe)
			if quantized {
				label += " int8"
			}
			fmt.Fprintf(w, "%-26s %10.1f queries/sec  (%.2fx)  recall@1 %.3f  recall@10 %.3f\n",
				label, qps, speedup, r1, r10)
			results = append(results, benchRow{
				Bench: "ann", Strategy: label, Rows: rows, Dim: dim, Queries: nq, K: kk,
				QueriesPerSec: qps, Speedup: speedup,
				Clusters: nlist, NProbe: nprobe, Quantized: quantized,
				RecallAt1: r1, RecallAt10: r10,
			})
			if r10 >= floor && speedup >= minSpeedup {
				pass = true
			}
		}
	}
	if !pass {
		return fmt.Errorf("no swept setting reached recall@10 >= %.2f at >= %.1fx flat throughput", floor, minSpeedup)
	}
	fmt.Fprintf(w, "recall floor: some setting reaches recall@10 >= %.2f at >= %.1fx flat: OK\n", floor, minSpeedup)

	if outPath != "" {
		if err := updateBenchFile(outPath, "ann", results); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	return nil
}

// recallAt is the standard set recall: |top-n(approx) ∩ top-n(exact)| / n,
// averaged over queries (truncated to the available depth).
func recallAt(truth, got [][]knn.Result, n int) float64 {
	var hit, total int
	for qi := range truth {
		t, g := truth[qi], got[qi]
		if len(t) > n {
			t = t[:n]
		}
		if len(g) > n {
			g = g[:n]
		}
		in := make(map[int32]bool, len(t))
		for _, res := range t {
			in[res.ID] = true
		}
		total += len(t)
		for _, res := range g {
			if in[res.ID] {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
