package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"sisg/internal/emb"
	"sisg/internal/knn"
	"sisg/internal/rng"
	"sisg/internal/vecmath"
)

// runRetrieval benchmarks the sharded retrieval engine against the
// pre-engine serial scan (per-row vecmath.Dot feeding a top-k min-heap) on
// a deterministic random matrix, reporting single-query and batched
// throughput at several shard counts. It also asserts the engine's
// determinism guarantee end to end: results must be bit-identical across
// every shard count and between batched and single-query retrieval.
//
// The baseline uses the plain Dot kernel, so its scores can differ from
// the engine's in the last bit (different accumulation order); identity is
// therefore asserted engine-vs-engine, while the baseline serves as the
// throughput reference.
//
// Results also land in the "retrieval" section of the trajectory file at
// outPath (empty = stdout only), same shape as BENCH_dist.json, so the
// serving-path perf history is recorded rather than re-measured from
// scratch each time someone asks how we got here.
func runRetrieval(w io.Writer, outPath string, rows, dim, nq, k int) error {
	r := rng.New(42)
	m := emb.NewMatrix(rows, dim)
	for i := range m.Data() {
		m.Data()[i] = r.Float32()*2 - 1
	}
	queries := make([][]float32, nq)
	for i := range queries {
		queries[i] = make([]float32, dim)
		for j := range queries[i] {
			queries[i][j] = r.Float32()*2 - 1
		}
	}
	fmt.Fprintf(w, "retrieval benchmark: %d rows x %d dims, %d queries, k=%d\n", rows, dim, nq, k)

	elapsed := func(f func()) float64 {
		start := time.Now()
		f()
		return time.Since(start).Seconds()
	}
	baseline := elapsed(func() {
		for _, q := range queries {
			serialScan(m, rows, q, k)
		}
	})
	qps := float64(nq) / baseline
	fmt.Fprintf(w, "%-28s %10.1f queries/sec  (1.00x)\n", "serial Dot+heap baseline", qps)
	mkRow := func(strategy string, qps, speedup float64) benchRow {
		return benchRow{
			Bench: "retrieval", Strategy: strategy, Rows: rows, Dim: dim, Queries: nq, K: k,
			QueriesPerSec: qps, Speedup: speedup,
		}
	}
	results := []benchRow{mkRow("serial Dot+heap baseline", qps, 1)}

	shardCounts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		shardCounts = append(shardCounts, n)
	}
	var want [][]knn.Result
	for _, shards := range shardCounts {
		ix := knn.NewIndexSharded(m, 0, false, shards)
		secs := elapsed(func() {
			for _, q := range queries {
				_, _ = ix.Query(context.Background(), q, knn.Options{K: k})
			}
		})
		got := make([][]knn.Result, nq)
		for i, q := range queries {
			got[i], _ = ix.Query(context.Background(), q, knn.Options{K: k})
		}
		if want == nil {
			want = got
		} else if err := sameResultSets(want, got); err != nil {
			return fmt.Errorf("shards=%d diverged from shards=%d: %v", shards, shardCounts[0], err)
		}
		label := fmt.Sprintf("engine shards=%d", shards)
		fmt.Fprintf(w, "%-28s %10.1f queries/sec  (%.2fx)\n", label, float64(nq)/secs, baseline/secs)
		results = append(results, mkRow(label, float64(nq)/secs, baseline/secs))
	}

	ix := knn.NewIndexSharded(m, 0, false, 4)
	var batched [][]knn.Result
	secs := elapsed(func() { batched, _ = ix.QueryBatch(context.Background(), queries, knn.Options{K: k}) })
	if err := sameResultSets(want, batched); err != nil {
		return fmt.Errorf("batch diverged from single-query: %v", err)
	}
	fmt.Fprintf(w, "%-28s %10.1f queries/sec  (%.2fx)\n", "engine batch shards=4", float64(nq)/secs, baseline/secs)
	results = append(results, mkRow("engine batch shards=4", float64(nq)/secs, baseline/secs))
	fmt.Fprintln(w, "determinism: bit-identical across shard counts and batch: OK")

	if outPath != "" {
		if err := updateBenchFile(outPath, "retrieval", results); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	return nil
}

// serialScan is the pre-engine retrieval path, reproduced as the baseline:
// score each row with vecmath.Dot, keep the top k in a min-heap.
func serialScan(m *emb.Matrix, rows int, q []float32, k int) []knn.Result {
	h := make([]knn.Result, 0, k)
	for i := 0; i < rows; i++ {
		s := vecmath.Dot(m.Row(int32(i)), q)
		if len(h) < k {
			h = append(h, knn.Result{ID: int32(i), Score: s})
			siftUp(h)
		} else if s > h[0].Score {
			h[0] = knn.Result{ID: int32(i), Score: s}
			siftDown(h)
		}
	}
	return h
}

func heapLess(a, b knn.Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func siftUp(h []knn.Result) {
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDown(h []knn.Result) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && heapLess(h[l], h[s]) {
			s = l
		}
		if r < len(h) && heapLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

func sameResultSets(want, got [][]knn.Result) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d result sets vs %d", len(want), len(got))
	}
	for qi := range want {
		if len(want[qi]) != len(got[qi]) {
			return fmt.Errorf("query %d: %d results vs %d", qi, len(want[qi]), len(got[qi]))
		}
		for i := range want[qi] {
			if want[qi][i].ID != got[qi][i].ID ||
				math.Float32bits(want[qi][i].Score) != math.Float32bits(got[qi][i].Score) {
				return fmt.Errorf("query %d pos %d: {%d %x} vs {%d %x}", qi, i,
					want[qi][i].ID, math.Float32bits(want[qi][i].Score),
					got[qi][i].ID, math.Float32bits(got[qi][i].Score))
			}
		}
	}
	return nil
}
