// Command sisg-bench regenerates the paper's tables and figures on the
// synthetic workload. Run with -exp all (default) or a comma-separated list
// of experiment IDs: table1, table2, table3, fig3, fig4, fig5, fig6,
// fig7a, fig7b, asym, hbgp, atns.
//
// Output is a textual rendering of each table/figure series; see
// EXPERIMENTS.md for the committed reference run.
//
// With -retrieval, the command instead benchmarks the sharded retrieval
// engine (internal/knn) against the pre-engine serial scan and asserts
// bit-identical results across shard counts; -retrieval-rows, -retrieval-dim,
// -retrieval-queries and -retrieval-k size the workload. Results are
// appended to the trajectory file named by -retrieval-out (default
// BENCH_retrieval.json).
//
// With -ann, it runs the IVF recall@K harness: flat scan as ground truth,
// an NProbe sweep with int8 quantization off and on, recall@{1,10} and
// queries/sec per setting, a bit-identity check at exhaustive probe, and
// a hard floor (-ann-floor, -ann-min-speedup) that makes the run fail
// when the accuracy/speed trade-off regresses. The same workload flags
// size the corpus; rows go to the "ann" section of -retrieval-out.
//
// With -dist, it benchmarks the distributed trainer's transports — the
// in-process channel mesh against real TCP over loopback — on one shared
// workload, asserts the pair accounting agrees, and writes the trajectory
// file named by -dist-out (default BENCH_dist.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sisg/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		quick     = flag.Bool("quick", false, "use reduced corpus sizes (fast sanity run)")
		seed      = flag.Uint64("seed", 0, "override corpus seed (0 = config default)")
		retrieval = flag.Bool("retrieval", false, "benchmark the retrieval engine instead of running experiments")
		rRows     = flag.Int("retrieval-rows", 50000, "retrieval bench: matrix rows")
		rDim      = flag.Int("retrieval-dim", 64, "retrieval bench: embedding dimensions")
		rQueries  = flag.Int("retrieval-queries", 32, "retrieval bench: number of queries")
		rK        = flag.Int("retrieval-k", 20, "retrieval bench: candidates per query")
		rOut      = flag.String("retrieval-out", "BENCH_retrieval.json", "retrieval/ann bench: JSON results path (empty = stdout only)")
		annBench  = flag.Bool("ann", false, "run the IVF recall@K harness instead of running experiments")
		annFloor  = flag.Float64("ann-floor", 0.95, "ann bench: minimum recall@10 some swept setting must reach")
		annSpeed  = flag.Float64("ann-min-speedup", 5, "ann bench: minimum speedup over the flat scan at the passing setting")
		distBench = flag.Bool("dist", false, "benchmark the distributed transports (chan vs tcp loopback) instead of running experiments")
		dWorkers  = flag.Int("dist-workers", 4, "dist bench: worker count")
		dSessions = flag.Int("dist-sessions", 600, "dist bench: training sessions (0 = whole Tiny corpus)")
		dOut      = flag.String("dist-out", "BENCH_dist.json", "dist bench: JSON results path (empty = stdout only)")
	)
	flag.Parse()

	if *distBench {
		if err := runDistBench(os.Stdout, *dOut, *dWorkers, *dSessions); err != nil {
			fmt.Fprintf(os.Stderr, "sisg-bench: dist: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *annBench {
		if err := runANN(os.Stdout, *rOut, *rRows, *rDim, *rQueries, *rK, *annFloor, *annSpeed); err != nil {
			fmt.Fprintf(os.Stderr, "sisg-bench: ann: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *retrieval {
		if err := runRetrieval(os.Stdout, *rOut, *rRows, *rDim, *rQueries, *rK); err != nil {
			fmt.Fprintf(os.Stderr, "sisg-bench: retrieval: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	run := func(id string) bool { return all || want[id] }

	ok := true
	for _, e := range experiments.Registry() {
		if !run(e.ID) {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, os.Stderr, *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sisg-bench: %s: %v\n", e.ID, err)
			ok = false
		}
		fmt.Println()
	}
	if !ok {
		os.Exit(1)
	}
}
