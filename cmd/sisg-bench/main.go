// Command sisg-bench regenerates the paper's tables and figures on the
// synthetic workload. Run with -exp all (default) or a comma-separated list
// of experiment IDs: table1, table2, table3, fig3, fig4, fig5, fig6,
// fig7a, fig7b, asym, hbgp, atns.
//
// Output is a textual rendering of each table/figure series; see
// EXPERIMENTS.md for the committed reference run.
//
// With -retrieval, the command instead benchmarks the sharded retrieval
// engine (internal/knn) against the pre-engine serial scan and asserts
// bit-identical results across shard counts; -retrieval-rows, -retrieval-dim,
// -retrieval-queries and -retrieval-k size the workload.
//
// With -dist, it benchmarks the distributed trainer's transports — the
// in-process channel mesh against real TCP over loopback — on one shared
// workload, asserts the pair accounting agrees, and writes the trajectory
// file named by -dist-out (default BENCH_dist.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sisg/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		quick     = flag.Bool("quick", false, "use reduced corpus sizes (fast sanity run)")
		seed      = flag.Uint64("seed", 0, "override corpus seed (0 = config default)")
		retrieval = flag.Bool("retrieval", false, "benchmark the retrieval engine instead of running experiments")
		rRows     = flag.Int("retrieval-rows", 50000, "retrieval bench: matrix rows")
		rDim      = flag.Int("retrieval-dim", 64, "retrieval bench: embedding dimensions")
		rQueries  = flag.Int("retrieval-queries", 32, "retrieval bench: number of queries")
		rK        = flag.Int("retrieval-k", 20, "retrieval bench: candidates per query")
		distBench = flag.Bool("dist", false, "benchmark the distributed transports (chan vs tcp loopback) instead of running experiments")
		dWorkers  = flag.Int("dist-workers", 4, "dist bench: worker count")
		dSessions = flag.Int("dist-sessions", 600, "dist bench: training sessions (0 = whole Tiny corpus)")
		dOut      = flag.String("dist-out", "BENCH_dist.json", "dist bench: JSON results path (empty = stdout only)")
	)
	flag.Parse()

	if *distBench {
		if err := runDistBench(os.Stdout, *dOut, *dWorkers, *dSessions); err != nil {
			fmt.Fprintf(os.Stderr, "sisg-bench: dist: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *retrieval {
		if err := runRetrieval(os.Stdout, *rRows, *rDim, *rQueries, *rK); err != nil {
			fmt.Fprintf(os.Stderr, "sisg-bench: retrieval: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	run := func(id string) bool { return all || want[id] }

	ok := true
	for _, e := range experiments.Registry() {
		if !run(e.ID) {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, os.Stderr, *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sisg-bench: %s: %v\n", e.ID, err)
			ok = false
		}
		fmt.Println()
	}
	if !ok {
		os.Exit(1)
	}
}
