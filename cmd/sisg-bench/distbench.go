package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"sisg/internal/corpus"
	"sisg/internal/dist"
	"sisg/internal/experiments"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

// distBenchResult is one transport's row in BENCH_dist.json. Pairs/sec is
// the number the trajectory tracks; the wire columns exist so a future
// framing or batching change shows up as bytes-per-pair movement, not just
// as unexplained throughput drift.
type distBenchResult struct {
	Transport   string  `json:"transport"`
	Workers     int     `json:"workers"`
	Sessions    int     `json:"sessions"`
	Pairs       uint64  `json:"pairs"`
	RemotePairs uint64  `json:"remote_pairs"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	PairsPerSec float64 `json:"pairs_per_sec"`
	WireBytes   uint64  `json:"wire_bytes"`
	WireFrames  uint64  `json:"wire_frames"`
	Reconnects  uint64  `json:"reconnects"`
}

// runDistBench trains the same Tiny workload through both transports and
// reports pairs/sec side by side: the in-process channel mesh is the
// ceiling, TCP over loopback is the realistic floor, and the gap is the
// serialization + syscall cost of a real wire. Both runs share one
// generated corpus and partition, so the only variable is the transport.
func runDistBench(w io.Writer, outPath string, workers, sessions int) error {
	cfg, err := experiments.CorpusByName("tiny")
	if err != nil {
		return err
	}
	ds, err := corpus.Generate(cfg)
	if err != nil {
		return err
	}
	train := ds.Sessions
	if sessions > 0 && sessions < len(train) {
		train = train[:sessions]
	}
	v, err := sisg.VariantByName("SISG-F-U-D")
	if err != nil {
		return err
	}
	seqs := sisg.Enrich(ds.Dict, train, v)
	part, _, err := dist.PartitionForDataset(ds, train, workers)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "distributed transport benchmark: %s, %d sessions, %d workers\n",
		cfg.Name, len(train), workers)
	var results []distBenchResult
	for _, transport := range []string{dist.TransportChan, dist.TransportTCP} {
		opt := dist.DefaultOptions(workers)
		tropt := sgns.Defaults()
		tropt.Epochs = 1
		tropt.Seed = cfg.Seed
		opt.Options = sisg.TrainOptions(tropt, v, tropt.Window)
		opt.Workers = workers // TrainOptions replaced the embedded sgns.Options wholesale
		opt.Transport = transport
		// Hot replication would satisfy most cross-partition pairs locally;
		// the point here is to price the wire, so every boundary pair pays
		// a real remote call.
		opt.HotReplication = false
		_, st, err := dist.Train(ds.Dict.Dict, seqs, part, opt)
		if err != nil {
			return fmt.Errorf("%s run: %w", transport, err)
		}
		secs := st.Elapsed.Seconds()
		res := distBenchResult{
			Transport:   transport,
			Workers:     workers,
			Sessions:    len(train),
			Pairs:       st.Pairs,
			RemotePairs: st.RemotePairs,
			ElapsedSec:  secs,
			PairsPerSec: float64(st.Pairs) / secs,
			WireBytes:   st.WireBytesSent,
			WireFrames:  st.WireFrames,
			Reconnects:  st.Reconnects,
		}
		results = append(results, res)
		fmt.Fprintf(w, "%-6s %12.0f pairs/sec  (%d pairs, %.1f%% remote, %d wire bytes, %d frames)\n",
			transport, res.PairsPerSec, st.Pairs, 100*st.RemoteFraction(), st.WireBytesSent, st.WireFrames)
	}
	if results[0].Pairs != results[1].Pairs || results[0].RemotePairs != results[1].RemotePairs {
		return fmt.Errorf("transports disagree on work done: chan %d/%d pairs, tcp %d/%d",
			results[0].Pairs, results[0].RemotePairs, results[1].Pairs, results[1].RemotePairs)
	}
	fmt.Fprintf(w, "tcp/chan throughput ratio: %.2fx; identical pair accounting across transports\n",
		results[1].PairsPerSec/results[0].PairsPerSec)

	if outPath != "" {
		b, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	return nil
}
