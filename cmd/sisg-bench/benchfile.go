package main

import "sisg/internal/benchio"

// benchRow is one row of BENCH_retrieval.json — the serving-path analogue
// of BENCH_dist.json. The file is a flat JSON array holding two sections
// distinguished by Bench: "retrieval" (exact-scan engine trajectory) and
// "ann" (the IVF recall/speed trade-off curve). Each bench rewrites only
// its own section, so the two can be re-run independently without losing
// each other's numbers.
type benchRow struct {
	Bench    string `json:"bench"` // "retrieval" or "ann"
	Strategy string `json:"strategy"`
	Rows     int    `json:"rows"`
	Dim      int    `json:"dim"`
	Queries  int    `json:"queries"`
	K        int    `json:"k"`

	QueriesPerSec float64 `json:"queries_per_sec"`
	Speedup       float64 `json:"speedup_vs_baseline"`

	// ANN-only columns.
	Clusters   int     `json:"clusters,omitempty"`
	NProbe     int     `json:"nprobe,omitempty"`
	Quantized  bool    `json:"quantized,omitempty"`
	RecallAt1  float64 `json:"recall_at_1,omitempty"`
	RecallAt10 float64 `json:"recall_at_10,omitempty"`
}

// updateBenchFile replaces the named section of the bench trajectory file
// with rows, preserving every other section (see internal/benchio, the
// shared implementation every BENCH_*.json writer delegates to).
func updateBenchFile(path, section string, rows []benchRow) error {
	return benchio.UpdateSection(path, section, rows)
}
