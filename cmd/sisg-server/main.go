// Command sisg-server runs the matching-stage similarity service (see
// internal/server): it trains (or loads) a SISG model and serves candidate
// sets over HTTP, covering the paper's three production retrieval paths:
//
//	GET /v1/similar?item=123&k=20          item-to-item candidates (§II)
//	    &index=ivf&nprobe=8&quantized=1    sub-linear ANN retrieval (opt-in)
//	GET /v1/coldstart/item?item=123&k=20   Eq. 6 SI-only inference (§IV-C2)
//	GET /v1/coldstart/user?gender=F&age=2&power=1&k=20
//	                                       user-type averaging (§IV-C1)
//	GET /v1/stats                          serving counters
//	GET /healthz                           liveness
//	GET /readyz                            readiness (503 while loading/draining)
//	GET /metrics                           Prometheus text exposition
//
// The unversioned spellings (/similar, /coldstart/*, /stats) are legacy
// aliases of the /v1 paths. Errors on every path share one JSON envelope:
// {"error":{"code":"...","message":"..."}}. With -cache N, repeated
// /similar queries are served from a bounded LRU of result sets.
//
// Overload behavior: retrievals are admitted by predicted scan cost
// against -cost-budget; excess load is shed 503 with a load-derived
// Retry-After, identical in-flight /v1/similar scans are coalesced, and
// under sustained pressure default scans brown out from exact flat to IVF
// (responses then carry "X-Degraded: ivf" until pressure recedes). Clients
// that disconnect mid-scan cancel their scan at the next tile boundary.
//
// The listener binds immediately: while the corpus generates and the model
// trains or loads, /healthz already answers 200 (the process is alive) and
// /readyz answers 503 (do not route traffic yet). During graceful shutdown
// the same split holds — /readyz goes 503 first, then in-flight requests
// drain — so a load balancer always has an honest routing signal.
//
// With -pprof-addr a sidecar listener additionally serves net/http/pprof
// and the same /metrics registry, kept off the production port.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/emb"
	"sisg/internal/experiments"
	"sisg/internal/metrics"
	"sisg/internal/server"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisg-server: ")
	var (
		corpusName = flag.String("corpus", "quick", "dataset config: Sim25K, Sim100K, quick, tiny")
		modelPath  = flag.String("model", "", "embedding file from sisg-train (empty = train now)")
		variant    = flag.String("variant", "SISG-F-U-D", "model variant")
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		maxK       = flag.Int("maxk", 1000, "largest candidate set a request may ask for")
		seed       = flag.Uint64("seed", 0, "override corpus seed")
		maxInFly   = flag.Int("max-inflight", 256, "admission budget in full-flat-scan units (cheap scans pack many per unit)")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request handling deadline (cancels the scan at the next tile)")
		cacheSize  = flag.Int("cache", 0, "LRU cache entries for repeated /similar queries (0 = off)")
		costBudget = flag.Int64("cost-budget", 0, "admission budget in rows×dims scan units (0 = max-inflight × one flat scan)")
		brownHigh  = flag.Float64("brownout-high", 0, "admission pressure entering brownout (0 = default 0.75)")
		brownLow   = flag.Float64("brownout-low", 0, "admission pressure leaving brownout (0 = default 0.25)")
		brownLat   = flag.Duration("brownout-latency", 0, "retrieval EWMA latency entering brownout (0 = request-timeout/4)")
		brownHold  = flag.Duration("brownout-hold", 0, "how long an enter/exit condition must persist (0 = default 1s)")
		brownProbe = flag.Int("brownout-nprobe", 0, "IVF probe width for degraded scans (0 = engine default)")
		warmIVF    = flag.Bool("warm-ivf", false, "build the IVF ANN layer before reporting ready (first index=ivf request otherwise pays the k-means build)")
		drain      = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window on SIGINT/SIGTERM")
		pprofAddr  = flag.String("pprof-addr", "", "expose net/http/pprof and /metrics on this sidecar address (e.g. localhost:6060)")
	)
	flag.Parse()

	reg := metrics.NewRegistry()
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof + metrics sidecar on http://%s/debug/pprof/ and /metrics", *pprofAddr)
			// Same header deadline as the serving port below; the long
			// write window is for pprof profile/trace streams, which hold
			// the response open for their -seconds argument (30s default).
			sidecar := &http.Server{
				Addr:              *pprofAddr,
				Handler:           metrics.DebugMux(reg),
				ReadHeaderTimeout: 5 * time.Second,
				ReadTimeout:       10 * time.Second,
				WriteTimeout:      2 * time.Minute,
				IdleTimeout:       2 * time.Minute,
			}
			log.Fatal(sidecar.ListenAndServe())
		}()
	}

	// Bind the listener before the (slow) corpus + model bootstrap, behind
	// a swappable handler: liveness is answerable the moment the process is
	// up, readiness flips only when the model can actually serve.
	var handler atomic.Value // http.HandlerFunc — one concrete type for every Store
	handler.Store(bootstrapHandler().ServeHTTP)
	srv := &http.Server{
		Addr: *addr,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(func(http.ResponseWriter, *http.Request))(w, r)
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (not ready: loading)", *addr)

	cfg, err := experiments.CorpusByName(*corpusName)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	v, err := sisg.VariantByName(*variant)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("generating %s ...", cfg.Name)
	ds, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var model *sisg.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		m, err := emb.Load(f)
		_ = f.Close() // read-only file; a short read surfaces through the Load error
		if err != nil {
			log.Fatal(err)
		}
		if m.Vocab() != ds.Dict.Len() {
			log.Fatalf("model vocab %d != corpus vocab %d", m.Vocab(), ds.Dict.Len())
		}
		model = &sisg.Model{Variant: v, Dict: ds.Dict, Emb: m}
	} else {
		log.Printf("training %s ...", v.Name)
		model, err = sisg.Train(ds.Dict, ds.Sessions, v, sgns.Defaults())
		if err != nil {
			log.Fatal(err)
		}
	}

	if *warmIVF {
		t0 := time.Now()
		log.Printf("warming IVF layer: %d clusters (%s)",
			model.ItemIndex().IVFClusters(), time.Since(t0).Round(time.Millisecond))
	}

	s := server.NewConfigured(ds, model, server.Config{
		MaxK:              *maxK,
		MaxInFlight:       *maxInFly,
		RequestTimeout:    *reqTimeout,
		CacheSize:         *cacheSize,
		CostBudget:        *costBudget,
		BrownoutHighWater: *brownHigh,
		BrownoutLowWater:  *brownLow,
		BrownoutLatency:   *brownLat,
		BrownoutHold:      *brownHold,
		BrownoutNProbe:    *brownProbe,
		Metrics:           reg, // one registry for the serving port and the sidecar
	})
	handler.Store(s.Handler().ServeHTTP)

	// Graceful shutdown: on SIGINT/SIGTERM flip /readyz to 503 (the load
	// balancer stops routing here), then stop accepting connections and
	// drain in-flight requests for up to -drain-timeout before exiting, so
	// a rolling restart never truncates candidate sets mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("serving %s model for %s on %s (ready)", v.Name, cfg.Name, *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills immediately
		s.SetReady(false)
		log.Printf("signal received, readiness withdrawn, draining for up to %s ...", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Print("drained, bye")
	}
}

// bootstrapHandler answers for the window between bind and model-ready:
// alive but not ready, and nothing else is routable yet.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "loading"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "loading"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "server is loading its model, not ready", http.StatusServiceUnavailable)
	})
	return mux
}
