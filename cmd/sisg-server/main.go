// Command sisg-server runs the matching-stage similarity service (see
// internal/server): it trains (or loads) a SISG model and serves candidate
// sets over HTTP, covering the paper's three production retrieval paths:
//
//	GET /similar?item=123&k=20          item-to-item candidates (§II)
//	GET /coldstart/item?item=123&k=20   Eq. 6 SI-only inference (§IV-C2)
//	GET /coldstart/user?gender=F&age=2&power=1&k=20
//	                                    user-type averaging (§IV-C1)
//	GET /healthz, /stats                liveness and serving counters
//	GET /metrics                        Prometheus text exposition
//
// With -pprof-addr a sidecar listener additionally serves net/http/pprof
// and the same /metrics registry, kept off the production port.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/emb"
	"sisg/internal/experiments"
	"sisg/internal/metrics"
	"sisg/internal/server"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisg-server: ")
	var (
		corpusName = flag.String("corpus", "quick", "dataset config: Sim25K, Sim100K, quick, tiny")
		modelPath  = flag.String("model", "", "embedding file from sisg-train (empty = train now)")
		variant    = flag.String("variant", "SISG-F-U-D", "model variant")
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		maxK       = flag.Int("maxk", 1000, "largest candidate set a request may ask for")
		seed       = flag.Uint64("seed", 0, "override corpus seed")
		maxInFly   = flag.Int("max-inflight", 256, "concurrent requests before shedding 503s")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request handling deadline")
		drain      = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window on SIGINT/SIGTERM")
		pprofAddr  = flag.String("pprof-addr", "", "expose net/http/pprof and /metrics on this sidecar address (e.g. localhost:6060)")
	)
	flag.Parse()

	reg := metrics.NewRegistry()
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof + metrics sidecar on http://%s/debug/pprof/ and /metrics", *pprofAddr)
			log.Fatal(http.ListenAndServe(*pprofAddr, metrics.DebugMux(reg)))
		}()
	}

	cfg, err := experiments.CorpusByName(*corpusName)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	v, err := sisg.VariantByName(*variant)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("generating %s ...", cfg.Name)
	ds, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var model *sisg.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		m, err := emb.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if m.Vocab() != ds.Dict.Len() {
			log.Fatalf("model vocab %d != corpus vocab %d", m.Vocab(), ds.Dict.Len())
		}
		model = &sisg.Model{Variant: v, Dict: ds.Dict, Emb: m}
	} else {
		log.Printf("training %s ...", v.Name)
		model, err = sisg.Train(ds.Dict, ds.Sessions, v, sgns.Defaults())
		if err != nil {
			log.Fatal(err)
		}
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: server.NewConfigured(ds, model, server.Config{
			MaxK:           *maxK,
			MaxInFlight:    *maxInFly,
			RequestTimeout: *reqTimeout,
			Metrics:        reg, // one registry for the serving port and the sidecar
		}).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections and
	// drain in-flight requests for up to -drain-timeout before exiting, so
	// a rolling restart never truncates candidate sets mid-response.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %s model for %s on %s", v.Name, cfg.Name, *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills immediately
		log.Printf("signal received, draining for up to %s ...", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Print("drained, bye")
	}
}
