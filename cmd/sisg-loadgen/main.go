// Command sisg-loadgen drives the serving stack with OPEN-LOOP load: the
// arrival process is a Poisson stream at the offered rate, independent of
// how fast the server answers. Closed-loop drivers (fire, wait, fire)
// self-throttle exactly when the server slows down, hiding the overload
// behaviors this repo's serving tier exists to survive; an open-loop
// generator keeps offering load while the server sheds, coalesces and
// browns out — which is what production traffic does.
//
// Traffic is a head-skewed mix: /v1/similar seeds drawn Zipf-distributed
// over the catalog (so single-flight coalescing has something to coalesce),
// a -cold fraction of cold-start item requests, and a -cancel fraction of
// requests whose client hangs up -cancel-after into the call (exercising
// scan cancellation and admission-budget release).
//
// Every response is audited: a valid candidate array, or the one JSON
// error envelope with a stable machine code. Anything else is counted
// bad_envelope — the invariant "every answer is well-formed, even under
// overload" is the point of the exercise.
//
// With -self-serve the generator boots an in-process server (tiny corpus,
// one-epoch model) on a loopback listener, so CI can smoke-test the whole
// overload story in one command with no orchestration. Numbers from that
// mode measure the serving stack on loopback, not a network fabric; the
// BENCH rows say so.
//
// With -out, results rewrite the "serving" section of BENCH_serving.json
// (other sections are preserved; see internal/benchio).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"sisg/internal/benchio"
	"sisg/internal/corpus"
	"sisg/internal/experiments"
	"sisg/internal/rng"
	"sisg/internal/server"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisg-loadgen: ")
	var (
		addr          = flag.String("addr", "", "target base URL (e.g. http://127.0.0.1:8080); empty requires -self-serve")
		selfServe     = flag.Bool("self-serve", false, "boot an in-process server on loopback and load it")
		rate          = flag.Float64("rate", 100, "offered arrival rate, requests/second (Poisson)")
		duration      = flag.Duration("duration", 5*time.Second, "how long to offer load")
		seed          = flag.Uint64("seed", 42, "RNG seed for arrivals, seeds and traffic mix")
		zipfS         = flag.Float64("zipf", 1.1, "Zipf exponent for /v1/similar seed popularity")
		k             = flag.Int("k", 20, "candidate-set size requested")
		coldFrac      = flag.Float64("cold", 0.05, "fraction of traffic hitting /v1/coldstart/item")
		cancelFrac    = flag.Float64("cancel", 0, "fraction of requests whose client hangs up mid-call")
		cancelAfter   = flag.Duration("cancel-after", 2*time.Millisecond, "client hang-up delay for the -cancel fraction")
		clientTimeout = flag.Duration("client-timeout", 5*time.Second, "per-request client-side timeout")
		label         = flag.String("label", "", "bench-row label (default nominal/overload by context)")
		out           = flag.String("out", "BENCH_serving.json", "bench trajectory file to update (empty = don't write)")

		selfCorpus   = flag.String("self-corpus", "tiny", "-self-serve dataset config")
		selfInflight = flag.Int("self-inflight", 8, "-self-serve admission budget in flat-scan units")
		selfCache    = flag.Int("self-cache", 0, "-self-serve /similar LRU entries (0 = off)")
		selfDelay    = flag.Duration("self-delay", 0, "-self-serve artificial per-scan delay (makes a tiny corpus behave like a big one)")
		selfHold     = flag.Duration("self-hold", 500*time.Millisecond, "-self-serve brownout hold window")
		selfTimeout  = flag.Duration("self-request-timeout", 2*time.Second, "-self-serve per-request deadline")

		maxFiveXX = flag.Int("assert-max-5xx", -1, "fail if more than this many responses had status >= 500 (-1 = no assert)")
		maxBadEnv = flag.Int("assert-max-bad-envelope", -1, "fail if more than this many responses were malformed (-1 = no assert)")
		minShed   = flag.Int("assert-min-shed", 0, "fail unless the server shed at least this many requests")
		minCoal   = flag.Int("assert-min-coalesced", 0, "fail unless at least this many requests were coalesced")
	)
	flag.Parse()

	base := *addr
	items := 0
	if *selfServe {
		var shutdown func()
		base, items, shutdown = startSelfServer(*selfCorpus, *seed, server.Config{
			MaxInFlight:    *selfInflight,
			CacheSize:      *selfCache,
			RetrievalDelay: *selfDelay,
			BrownoutHold:   *selfHold,
			RequestTimeout: *selfTimeout,
		})
		defer shutdown()
	} else if base == "" {
		log.Fatal("need -addr or -self-serve")
	}

	client := &http.Client{
		Timeout: *clientTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}
	if items == 0 {
		items = discoverItems(client, base)
	}
	log.Printf("target %s: %d catalog items", base, items)

	r := rng.New(*seed)
	zipf := rng.NewZipf(r.Split(), items, *zipfS)
	before := scrapeStats(client, base)

	col := &collector{outcomes: make(map[string]int)}
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	offered := 0
	for {
		// Exponential inter-arrival gap: -ln(U)/rate. The schedule is a
		// ladder of ABSOLUTE times — if the generator falls behind it fires
		// immediately and catches up, it never lets the server's slowness
		// stretch the offered schedule (that would close the loop).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		next = next.Add(time.Duration(-math.Log(u) / *rate * float64(time.Second)))
		if next.Sub(start) > *duration {
			break
		}
		time.Sleep(time.Until(next))

		url := fmt.Sprintf("%s/v1/similar?item=%d&k=%d", base, zipf.Sample(), *k)
		if r.Float64() < *coldFrac {
			url = fmt.Sprintf("%s/v1/coldstart/item?item=%d&k=%d", base, zipf.Sample(), *k)
		}
		hangup := time.Duration(0)
		if *cancelFrac > 0 && r.Float64() < *cancelFrac {
			hangup = *cancelAfter
		}
		offered++
		wg.Add(1)
		go func() {
			defer wg.Done()
			col.record(fire(client, url, hangup))
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	after := scrapeStats(client, base)

	report(col, offered, *rate, elapsed, before, after)

	if *out != "" {
		lbl := *label
		if lbl == "" {
			lbl = fmt.Sprintf("rate%g", *rate)
		}
		if err := writeBenchRow(*out, lbl, *rate, elapsed, *selfServe, col, before, after); err != nil {
			log.Fatal(err)
		}
		log.Printf("updated %s section %q", *out, "serving")
	}

	failed := false
	check := func(ok bool, format string, args ...interface{}) {
		if !ok {
			failed = true
			log.Printf("ASSERT FAILED: "+format, args...)
		}
	}
	if *maxFiveXX >= 0 {
		check(col.fiveXX <= *maxFiveXX, "%d responses with status >= 500, want <= %d", col.fiveXX, *maxFiveXX)
	}
	if *maxBadEnv >= 0 {
		bad := col.outcomes["bad_envelope"]
		check(bad <= *maxBadEnv, "%d malformed responses, want <= %d", bad, *maxBadEnv)
	}
	shed := int(after.Shed - before.Shed)
	coal := int(after.Coalesced - before.Coalesced)
	check(shed >= *minShed, "server shed %d, want >= %d", shed, *minShed)
	check(coal >= *minCoal, "server coalesced %d, want >= %d", coal, *minCoal)
	if failed {
		os.Exit(1)
	}
}

// fire issues one request and classifies its outcome. hangup > 0 emulates
// a client that gives up mid-call: the request context is cancelled after
// that delay, which tears down the connection and must cancel the scan
// server-side.
func fire(client *http.Client, url string, hangup time.Duration) (outcome string, latency time.Duration, fiveXX bool) {
	ctx := context.Background()
	if hangup > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, hangup)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "net_error", 0, false
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	latency = time.Since(t0)
	if err != nil {
		switch {
		case hangup > 0 && ctx.Err() != nil:
			return "canceled", latency, false
		case context.Cause(ctx) != nil:
			return "canceled", latency, false
		default:
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return "client_timeout", latency, false
			}
			// http.Client wraps its own Timeout the same way.
			return "client_timeout_or_net_error", latency, false
		}
	}
	defer func() { _ = resp.Body.Close() }()
	fiveXX = resp.StatusCode >= 500

	if resp.StatusCode == http.StatusOK {
		var cands []server.Candidate
		if err := json.NewDecoder(resp.Body).Decode(&cands); err != nil || len(cands) == 0 {
			return "bad_envelope", latency, fiveXX
		}
		return "ok", latency, fiveXX
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code == "" || env.Error.Message == "" {
		return "bad_envelope", latency, fiveXX
	}
	return env.Error.Code, latency, fiveXX // overloaded, timeout, bad_request, internal, ...
}

// collector accumulates outcomes under one mutex; the hot path is the
// network, not this lock.
type collector struct {
	mu       sync.Mutex
	outcomes map[string]int
	okLat    []time.Duration
	fiveXX   int
}

func (c *collector) record(outcome string, lat time.Duration, fiveXX bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.outcomes[outcome]++
	if outcome == "ok" {
		c.okLat = append(c.okLat, lat)
	}
	if fiveXX {
		c.fiveXX++
	}
}

// percentile returns the p-quantile (0..1) of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(col *collector, offered int, rate float64, elapsed time.Duration, before, after server.Stats) {
	col.mu.Lock()
	defer col.mu.Unlock()
	sort.Slice(col.okLat, func(i, j int) bool { return col.okLat[i] < col.okLat[j] })

	log.Printf("offered %.1f req/s for %s → %d requests", rate, elapsed.Round(time.Millisecond), offered)
	keys := make([]string, 0, len(col.outcomes))
	for k := range col.outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	line := "outcomes:"
	for _, k := range keys {
		line += fmt.Sprintf(" %s=%d", k, col.outcomes[k])
	}
	log.Print(line)
	log.Printf("ok latency: p50=%s p90=%s p99=%s p999=%s (n=%d)",
		percentile(col.okLat, 0.50).Round(time.Microsecond),
		percentile(col.okLat, 0.90).Round(time.Microsecond),
		percentile(col.okLat, 0.99).Round(time.Microsecond),
		percentile(col.okLat, 0.999).Round(time.Microsecond),
		len(col.okLat))
	log.Printf("server deltas: shed=%d coalesced=%d canceled=%d timeouts~(see /metrics) brownout_entered=%d brownout_exited=%d degraded_at_end=%v",
		after.Shed-before.Shed, after.Coalesced-before.Coalesced, after.Canceled-before.Canceled,
		after.BrownoutEntered-before.BrownoutEntered, after.BrownoutExited-before.BrownoutExited, after.Degraded)
}

// servingRow is one row of BENCH_serving.json's "serving" section.
type servingRow struct {
	Bench    string  `json:"bench"` // always "serving"
	Label    string  `json:"label"`
	RateHz   float64 `json:"offered_rate_hz"`
	Duration float64 `json:"duration_sec"`
	Requests int     `json:"requests"`

	OK          int `json:"ok"`
	Overloaded  int `json:"overloaded"`
	Timeouts    int `json:"timeouts"`
	BadRequest  int `json:"bad_request"`
	Canceled    int `json:"canceled"`
	Internal    int `json:"internal"`
	BadEnvelope int `json:"bad_envelope"`
	NetErrors   int `json:"net_errors"`

	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`

	CompletedRateHz float64 `json:"completed_rate_hz"`
	ShedRate        float64 `json:"shed_rate"`
	CoalesceRate    float64 `json:"coalesce_rate"`
	BrownoutEntered uint64  `json:"brownout_entered"`
	DegradedAtEnd   bool    `json:"degraded_at_end"`

	Note string `json:"note"`
}

func writeBenchRow(path, label string, rate float64, elapsed time.Duration, selfServe bool, col *collector, before, after server.Stats) error {
	col.mu.Lock()
	defer col.mu.Unlock()
	sort.Slice(col.okLat, func(i, j int) bool { return col.okLat[i] < col.okLat[j] })
	total := 0
	for _, n := range col.outcomes {
		total += n
	}
	note := "open-loop Poisson arrivals over a real HTTP connection (loopback-class latency unless pointed at a remote host)"
	if selfServe {
		note = "open-loop Poisson arrivals, in-process server over loopback — measures the serving stack, not a network fabric"
	}
	ms := func(p float64) float64 { return float64(percentile(col.okLat, p)) / float64(time.Millisecond) }
	row := servingRow{
		Bench: "serving", Label: label, RateHz: rate, Duration: elapsed.Seconds(), Requests: total,
		OK:          col.outcomes["ok"],
		Overloaded:  col.outcomes["overloaded"],
		Timeouts:    col.outcomes["timeout"] + col.outcomes["client_timeout"],
		BadRequest:  col.outcomes["bad_request"],
		Canceled:    col.outcomes["canceled"],
		Internal:    col.outcomes["internal"],
		BadEnvelope: col.outcomes["bad_envelope"],
		NetErrors:   col.outcomes["net_error"] + col.outcomes["client_timeout_or_net_error"],
		P50Ms:       ms(0.50), P90Ms: ms(0.90), P99Ms: ms(0.99), P999Ms: ms(0.999),
		CompletedRateHz: float64(len(col.okLat)) / elapsed.Seconds(),
		ShedRate:        rateOf(after.Shed-before.Shed, total),
		CoalesceRate:    rateOf(after.Coalesced-before.Coalesced, total),
		BrownoutEntered: after.BrownoutEntered - before.BrownoutEntered,
		DegradedAtEnd:   after.Degraded,
		Note:            note,
	}
	return benchio.UpdateSection(path, "serving", appendExisting(path, row))
}

// appendExisting collects the current "serving" rows plus the new one, so
// successive loadgen runs accumulate a trajectory (nominal + overload)
// instead of each run erasing the other's row. Rows with the same label
// are replaced.
func appendExisting(path string, row servingRow) []servingRow {
	rows := []servingRow{}
	if b, err := os.ReadFile(path); err == nil {
		var all []servingRow
		if json.Unmarshal(b, &all) == nil {
			for _, r := range all {
				if r.Bench == "serving" && r.Label != row.Label {
					rows = append(rows, r)
				}
			}
		}
	}
	return append(rows, row)
}

func rateOf(n uint64, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// discoverItems asks /healthz how many catalog items the target serves, so
// the Zipf seed distribution covers exactly the valid id range.
func discoverItems(client *http.Client, base string) int {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		log.Fatalf("target unreachable: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var h struct {
		Items int `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Items <= 0 {
		log.Fatalf("cannot discover catalog size from /healthz (err %v, items %d)", err, h.Items)
	}
	return h.Items
}

func scrapeStats(client *http.Client, base string) server.Stats {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		log.Fatalf("scraping /v1/stats: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatalf("decoding /v1/stats: %v", err)
	}
	return st
}

// startSelfServer boots the full serving stack in-process on a loopback
// listener: tiny corpus, one-epoch model, real HTTP — the whole hardening
// chain under test with no orchestration.
func startSelfServer(corpusName string, seed uint64, cfg server.Config) (base string, items int, shutdown func()) {
	cc, err := experiments.CorpusByName(corpusName)
	if err != nil {
		log.Fatal(err)
	}
	if seed != 0 {
		cc.Seed = seed
	}
	ds, err := corpus.Generate(cc)
	if err != nil {
		log.Fatal(err)
	}
	opt := sgns.Defaults()
	opt.Epochs = 1
	model, err := sisg.Train(ds.Dict, ds.Sessions, sisg.VariantSISGFUD, opt)
	if err != nil {
		log.Fatal(err)
	}
	s := server.NewConfigured(ds, model, cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("self-serve: %s corpus, %d items, listening on %s", cc.Name, ds.Dict.NumItems, ln.Addr())
	return "http://" + ln.Addr().String(), int(ds.Dict.NumItems), func() { _ = srv.Close() }
}
