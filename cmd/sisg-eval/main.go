// Command sisg-eval evaluates a trained embedding model on the next-item
// protocol (§IV-A): HR@K over the deterministic test split of the corpus.
//
//	sisg-eval -corpus Sim25K -variant SISG-F-U-D -model model.emb
//
// The corpus and split are regenerated deterministically, so evaluation
// matches the split sisg-train trained on only if the sessions came from
// the same config and seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sisg/internal/corpus"
	"sisg/internal/emb"
	"sisg/internal/eval"
	"sisg/internal/experiments"
	"sisg/internal/knn"
	"sisg/internal/sisg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisg-eval: ")
	var (
		corpusName = flag.String("corpus", "quick", "dataset config: Sim25K, Sim100K, Sim800K, quick, tiny")
		modelPath  = flag.String("model", "model.emb", "embedding file from sisg-train")
		variant    = flag.String("variant", "SISG-F-U-D", "variant the model was trained as (controls the scoring rule)")
		testFrac   = flag.Float64("testfrac", 0.08, "held-out session fraction")
		seed       = flag.Uint64("seed", 0, "override corpus seed (0 = config default)")
	)
	flag.Parse()

	cfg, err := experiments.CorpusByName(*corpusName)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	v, err := sisg.VariantByName(*variant)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := emb.Load(f)
	_ = f.Close() // read-only file; a short read surfaces through the Load error
	if err != nil {
		log.Fatalf("loading %s: %v", *modelPath, err)
	}

	log.Printf("generating %s ...", cfg.Name)
	ds, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if m.Vocab() != ds.Dict.Len() {
		log.Fatalf("model vocabulary %d does not match corpus vocabulary %d — wrong corpus or seed?",
			m.Vocab(), ds.Dict.Len())
	}
	split := ds.SplitNextItem(*testFrac)
	model := &sisg.Model{Variant: v, Dict: ds.Dict, Emb: m}

	rec := eval.RecommenderFunc(func(tc corpus.TestCase, k int) []knn.Result {
		return model.SimilarItems(tc.Query, k)
	})
	res := eval.Evaluate(v.Name, rec, split.Test, eval.Ks)
	fmt.Printf("test cases: %d\n", res.Tests)
	for _, k := range eval.Ks {
		fmt.Printf("HR@%-4d %.4f\n", k, res.HR[k])
	}
}
