// Command sisg-eval evaluates a trained embedding model on the next-item
// protocol (§IV-A): HR@K over the deterministic test split of the corpus.
//
//	sisg-eval -corpus Sim25K -variant SISG-F-U-D -model model.emb
//
// The corpus and split are regenerated deterministically, so evaluation
// matches the split sisg-train trained on only if the sessions came from
// the same config and seed.
//
// With -batch, all test queries are retrieved in one batched scan
// (knn.QueryBatch streams each row block once across the whole query set)
// and retrieval throughput is reported; scores and rankings are
// bit-identical to the per-query path, so HR@K is unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/emb"
	"sisg/internal/eval"
	"sisg/internal/experiments"
	"sisg/internal/knn"
	"sisg/internal/sisg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisg-eval: ")
	var (
		corpusName = flag.String("corpus", "quick", "dataset config: Sim25K, Sim100K, Sim800K, quick, tiny")
		modelPath  = flag.String("model", "model.emb", "embedding file from sisg-train")
		variant    = flag.String("variant", "SISG-F-U-D", "variant the model was trained as (controls the scoring rule)")
		testFrac   = flag.Float64("testfrac", 0.08, "held-out session fraction")
		seed       = flag.Uint64("seed", 0, "override corpus seed (0 = config default)")
		batch      = flag.Bool("batch", false, "retrieve all test queries in one batched scan and report throughput")
	)
	flag.Parse()

	cfg, err := experiments.CorpusByName(*corpusName)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	v, err := sisg.VariantByName(*variant)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := emb.Load(f)
	_ = f.Close() // read-only file; a short read surfaces through the Load error
	if err != nil {
		log.Fatalf("loading %s: %v", *modelPath, err)
	}

	log.Printf("generating %s ...", cfg.Name)
	ds, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if m.Vocab() != ds.Dict.Len() {
		log.Fatalf("model vocabulary %d does not match corpus vocabulary %d — wrong corpus or seed?",
			m.Vocab(), ds.Dict.Len())
	}
	split := ds.SplitNextItem(*testFrac)
	model := &sisg.Model{Variant: v, Dict: ds.Dict, Emb: m}

	rec := eval.RecommenderFunc(func(tc corpus.TestCase, k int) []knn.Result {
		rs, err := model.SimilarOne(context.Background(), tc.Query, knn.Options{K: k})
		if err != nil {
			log.Fatal(err)
		}
		return rs
	})
	if *batch {
		queries := make([]int32, len(split.Test))
		for i, tc := range split.Test {
			queries[i] = tc.Query
		}
		maxK := 0
		for _, k := range eval.Ks {
			if k > maxK {
				maxK = k
			}
		}
		start := time.Now()
		results, err := model.Similar(context.Background(), queries, knn.Options{K: maxK})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		log.Printf("batched retrieval: %d queries in %s (%.0f queries/sec)",
			len(queries), elapsed.Round(time.Millisecond),
			float64(len(queries))/elapsed.Seconds())
		byQuery := make(map[int32][]knn.Result, len(queries))
		for i, q := range queries {
			byQuery[q] = results[i]
		}
		rec = eval.RecommenderFunc(func(tc corpus.TestCase, k int) []knn.Result {
			rs := byQuery[tc.Query]
			if k < len(rs) {
				rs = rs[:k]
			}
			return rs
		})
	}
	res := eval.Evaluate(v.Name, rec, split.Test, eval.Ks)
	fmt.Printf("test cases: %d\n", res.Tests)
	for _, k := range eval.Ks {
		fmt.Printf("HR@%-4d %.4f\n", k, res.HR[k])
	}
}
