// Coldstart reproduces the paper's two cold-start case studies (§IV-C,
// Figures 4 and 6) end-to-end:
//
//   - cold-start USERS: recommendations for a brand-new user known only by
//     demographics, via averaged user-type vectors; and
//
//   - cold-start ITEMS: recommendations for items with zero behaviour
//     history, via the Eq. 6 sum of their side-information vectors.
//
//     go run ./examples/coldstart
package main

import (
	"context"
	"fmt"
	"log"

	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

func main() {
	log.SetFlags(0)

	cfg := corpus.Tiny()
	cfg.NumSessions = 8000
	ds, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Hold out 10% of the catalog as items "launched yesterday": they have
	// SI but no click history at training time.
	cold := ds.HoldoutItems(0.10)
	train := corpus.FilterSessions(ds.Sessions, cold)
	fmt.Printf("training on %d sessions; %d cold items excluded from history\n",
		len(train), len(cold))

	opt := sgns.Defaults()
	opt.Epochs = 3
	model, err := sisg.Train(ds.Dict, train, sisg.VariantSISGFUD, opt)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Cold-start users (Figure 4) ----
	fmt.Println("\n== cold-start users: same leaf categories, different price tiers ==")
	for _, demo := range []struct {
		gender, power int
		label         string
	}{
		{0, 0, "female, low purchasing power"},
		{0, 2, "female, high purchasing power"},
		{1, 0, "male, low purchasing power"},
		{1, 2, "male, high purchasing power"},
	} {
		types := ds.Pop.TypesMatching(demo.gender, -1, demo.power)
		recs, err := model.RecommendForColdUser(context.Background(), types, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s:", demo.label)
		var tierSum int
		for _, r := range recs {
			it := ds.Catalog.Items[r.ID]
			tierSum += int(it.Tier)
			fmt.Printf(" item_%d(t%d)", r.ID, it.Tier)
		}
		fmt.Printf("  mean tier %.1f\n", float64(tierSum)/float64(len(recs)))
	}

	// ---- Cold-start items (Figure 6) ----
	fmt.Println("\n== cold-start items: Eq. 6 places new items among their category peers ==")
	model.SeedColdItems(cold)
	shown := 0
	for _, id := range cold {
		it := ds.Catalog.Items[id]
		recs, err := model.SimilarOne(context.Background(), id, knn.Options{K: 5})
		if err != nil {
			log.Fatal(err)
		}
		sameTop := 0
		for _, r := range recs {
			if ds.Catalog.Items[r.ID].Top == it.Top {
				sameTop++
			}
		}
		fmt.Printf("cold item_%-5d (top %d, leaf %d): %d/%d recs share its top category\n",
			id, it.Top, it.Leaf, sameTop, len(recs))
		shown++
		if shown == 5 {
			break
		}
	}
}
