// Quickstart: generate a small synthetic click log, train the production
// SISG variant, and query similar items — the whole matching stage in under
// a minute.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

func main() {
	log.SetFlags(0)

	// 1. A toy Taobao: a few hundred items with full side information and
	//    a few thousand user sessions.
	cfg := corpus.Tiny()
	ds, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d items, %d leaf categories, %d user types, %d sessions\n",
		len(ds.Catalog.Items), ds.Catalog.NumLeaves(), len(ds.Pop.Types), len(ds.Sessions))

	// 2. Train SISG-F-U-D: sessions are enriched with SI and user-type
	//    tokens (Eq. 4 of the paper) and fed to directed SGNS.
	opt := sgns.Defaults()
	opt.Epochs = 3
	model, err := sisg.Train(ds.Dict, ds.Sessions, sisg.VariantSISGFUD, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s: %d pairs in %v\n",
		model.Variant.Name, model.Stats.Pairs, model.Stats.Elapsed.Round(1e6))

	// 3. Matching-stage query: candidates for a popular item.
	query := hottestItem(ds)
	qi := ds.Catalog.Items[query]
	fmt.Printf("\nquery item_%d (top %d, leaf %d, brand %d, tier %d) — top 5 similar:\n",
		query, qi.Top, qi.Leaf, qi.Brand, qi.Tier)
	top5, err := model.SimilarOne(context.Background(), query, knn.Options{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range top5 {
		it := ds.Catalog.Items[r.ID]
		fmt.Printf("  #%d item_%-5d score %.3f  (top %d, leaf %d, brand %d, tier %d)\n",
			i+1, r.ID, r.Score, it.Top, it.Leaf, it.Brand, it.Tier)
	}

	// 4. The same joint space answers cold-start queries: a brand-new item
	//    known only by its side information (Eq. 6).
	qv := model.ColdStartItemVector(ds.Dict.ItemSI[query])
	fmt.Println("\nEq. 6 cold-start lookup using only the item's SI:")
	recs, err := model.SimilarToVector(context.Background(), qv, 5, func(id int32) bool { return id == query })
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range recs {
		it := ds.Catalog.Items[r.ID]
		fmt.Printf("  #%d item_%-5d score %.3f  (leaf %d)\n", i+1, r.ID, r.Score, it.Leaf)
	}
}

func hottestItem(ds *corpus.Dataset) int32 {
	best, bestCount := int32(0), uint64(0)
	for i := 0; i < ds.Dict.NumItems; i++ {
		if c := ds.Dict.Count(int32(i)); c > bestCount {
			best, bestCount = int32(i), c
		}
	}
	return best
}
