// Distributed demonstrates the paper's §III training engine on a small
// corpus: HBGP partitions items across 4 simulated workers, ATNS replicates
// the hot (mostly SI) tokens, and the run reports the communication ledger
// that motivates both techniques.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"sisg/internal/corpus"
	"sisg/internal/dist"
	"sisg/internal/sisg"
)

func main() {
	log.SetFlags(0)
	const workers = 4

	cfg := corpus.Tiny()
	cfg.NumSessions = 8000
	ds, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	seqs := sisg.Enrich(ds.Dict, ds.Sessions, sisg.VariantSISGFUD)

	// HBGP: merge leaf categories into balanced, transition-coherent
	// partitions (§III-B, β = 1.2).
	part, g, err := dist.PartitionForDataset(ds, ds.Sessions, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HBGP over %d leaf categories -> %d workers\n", ds.Catalog.NumLeaves(), workers)
	fmt.Printf("  cut fraction (pairs crossing workers): %.1f%%\n", 100*part.CutFraction(g))
	fmt.Printf("  load imbalance (max/mean):             %.2f\n", part.Imbalance())

	for _, hot := range []bool{false, true} {
		opt := dist.DefaultOptions(workers)
		opt.Options = sisg.TrainOptions(opt.Options, sisg.VariantSISGFUD, 5)
		opt.Epochs = 1
		opt.HotReplication = hot
		model, st, err := dist.Train(ds.Dict.Dict, seqs, part, opt)
		if err != nil {
			log.Fatal(err)
		}
		name := "TNS  (no hot replication)"
		if hot {
			name = "ATNS (hot tokens replicated)"
		}
		fmt.Printf("\n%s\n", name)
		fmt.Printf("  pairs trained:     %d (%.1f%% needed a remote call)\n", st.Pairs, 100*st.RemoteFraction())
		fmt.Printf("  bytes on the wire: %d\n", st.BytesSent)
		fmt.Printf("  hot set |Q|:       %d tokens, %d sync rounds\n", st.HotTokens, st.HotSyncs)
		fmt.Printf("  simulated cluster time: %v (wall: %v)\n",
			st.SimElapsed.Round(time.Millisecond), st.Elapsed.Round(time.Millisecond))
		_ = model
	}
}
