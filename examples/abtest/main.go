// Abtest runs a miniature version of the paper's Figure 3 online
// experiment: an 8-day CTR A/B test of SISG-F-U-D against well-tuned
// item-item CF on simulated homepage traffic, including items launched
// after the training snapshot (which only SISG can serve, via Eq. 6).
//
//	go run ./examples/abtest
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"sisg/internal/abtest"
	"sisg/internal/cf"
	"sisg/internal/corpus"
	"sisg/internal/knn"
	"sisg/internal/sgns"
	"sisg/internal/sisg"
)

func main() {
	log.SetFlags(0)

	cfg := corpus.Tiny()
	cfg.NumSessions = 10_000
	ds, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cold := ds.HoldoutItems(0.15)
	train := corpus.FilterSessions(ds.Sessions, cold)

	model, err := sisg.Train(ds.Dict, train, sisg.VariantSISGFUD, sgns.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	model.SeedColdItems(cold)

	cfm, err := cf.Train(train, ds.Dict.NumItems, cf.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	arms := map[string]abtest.CandidateFunc{
		"SISG-F-U-D": func(q, user int32, k int) []knn.Result {
			rs, err := model.SimilarOne(context.Background(), q, knn.Options{K: k})
			if err != nil {
				return nil
			}
			return rs
		},
		"CF": func(q, user int32, k int) []knn.Result { return cfm.Similar(q, k) },
	}
	abCfg := abtest.DefaultConfig()
	abCfg.ImpressionsPerDay = 4000
	res, err := abtest.Run(ds, arms, abCfg)
	if err != nil {
		log.Fatal(err)
	}
	abtest.WriteSeries(os.Stdout, res)

	fmt.Printf("\nwhy: CF has no neighbour lists for the %d cold items (%d of them ever co-observed),\n",
		len(cold), coldWithNeighbours(cfm, cold))
	fmt.Println("while SISG serves them from their side-information vectors.")
}

func coldWithNeighbours(m *cf.Model, cold []int32) int {
	n := 0
	for _, id := range cold {
		if m.NeighbourCount(id) > 0 {
			n++
		}
	}
	return n
}
